(* The command-line front end of the environment.

     ocapi check <design>
     ocapi simulate <design> [--cycles N] [--engine E]
     ocapi synth <design> [--no-share]
     ocapi emit <design> [--dir D] [--cycles N]
     ocapi profile --design <design> --engine <E> [--cycles N] [--dir D]

   Designs: hcor | dect | cable (the reference designs of lib/designs). *)

open Cmdliner

type design = { d_sys : Cycle_system.t; d_macro : Dataflow.Kernel.t -> Synthesize.macro_spec option }

let build_design = function
  | "hcor" ->
    let bits = Dect_stimuli.burst ~seed:1 () in
    let tx = Dect_stimuli.transmit bits in
    let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
    let samples =
      Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
    in
    Ok
      {
        d_sys = (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system;
        d_macro = (fun _ -> None);
      }
  | "dect" ->
    let stim c =
      Some
        (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
           (sin (float c *. 0.37) /. 2.2))
    in
    Ok
      {
        d_sys = (Dect_transceiver.create ~stimulus:stim ()).Dect_transceiver.system;
        d_macro = Dect_transceiver.macro_of_kernel;
      }
  | other -> Error (Printf.sprintf "unknown design %S (try hcor or dect)" other)

let design_arg =
  let doc = "Reference design to operate on: hcor or dect." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let cycles_arg default =
  let doc = "Number of clock cycles." in
  Arg.(value & opt int default & info [ "cycles"; "n" ] ~docv:"N" ~doc)

let with_design name f =
  match build_design name with
  | Error e ->
    prerr_endline e;
    1
  | Ok d -> f d

(* check *)
let check_cmd =
  let run name =
    with_design name (fun d ->
        let report = Flow.check d.d_sys in
        Format.printf "%a@." Flow.pp_check_report report;
        if Flow.check_clean report then 0 else 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the semantic checks on a design.")
    Term.(const run $ design_arg)

(* simulate *)
let engine_arg =
  let doc =
    "Cycle engine (resolved from the engine registry: interp, compiled, \
     rtl) or gates."
  in
  Arg.(value & opt string "interp" & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"Run under telemetry and print the metrics report afterwards.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Enable the keyed result cache with its on-disk store under \
           _generated/cache/ (warm reruns skip re-simulation).")

(* Run [f] plainly, or under a fresh telemetry scope with the report
   printed afterwards. *)
let maybe_telemetry flag ~label f =
  if flag then begin
    let result, report = Ocapi_obs.run_with_telemetry ~label f in
    Format.printf "%a@." Ocapi_obs.pp_report report;
    result
  end
  else f ()

let unknown_engine other =
  Printf.eprintf "unknown engine %S (try %s or gates)\n" other
    (String.concat ", " (Ocapi_engine.names ()));
  1

let simulate_cmd =
  let run name cycles engine telemetry cache =
    with_design name (fun d ->
        if cache then Flow.Cache.enable ~dir:"_generated/cache" ();
        let show histories =
          List.iter
            (fun (p, hist) ->
              Printf.printf "%-14s %d tokens" p (List.length hist);
              (match List.rev hist with
              | (c, v) :: _ -> Printf.printf "; last @%d = %s" c (Fixed.to_string v)
              | [] -> ());
              print_newline ())
            histories
        in
        let code =
          match engine with
          | "gates" ->
            let r =
              maybe_telemetry telemetry ~label:(name ^ ".gates") (fun () ->
                  Flow.verify_netlist ~macro_of_kernel:d.d_macro d.d_sys
                    ~cycles)
            in
            Printf.printf "gate-level run: %d vectors, %d mismatches\n"
              r.Synthesize.vectors_checked
              (List.length r.Synthesize.mismatches);
            if r.Synthesize.mismatches = [] then 0 else 1
          | other -> (
            match Ocapi_engine.find other with
            | None -> unknown_engine other
            | Some e ->
              let engine = Ocapi_engine.name_of e in
              show
                (maybe_telemetry telemetry ~label:("simulate." ^ engine)
                   (fun () -> Flow.simulate ~engine d.d_sys ~cycles));
              0)
        in
        if cache then begin
          let s = Flow.Cache.stats () in
          Printf.printf
            "cache: %d hits (%d from disk), %d misses, %d entries\n"
            s.Flow.Cache.hits s.Flow.Cache.disk_hits s.Flow.Cache.misses
            s.Flow.Cache.entries
        end;
        code)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a design on one of the engines.")
    Term.(
      const run $ design_arg $ cycles_arg 200 $ engine_arg $ telemetry_arg
      $ cache_arg)

(* synth *)
let no_share_arg =
  Arg.(value & flag & info [ "no-share" ] ~doc:"Disable operator sharing.")

let optimize_arg =
  Arg.(value & flag & info [ "optimize" ]
         ~doc:"Run gate-level optimization after synthesis.")

let synth_cmd =
  let run name no_share optimize telemetry =
    with_design name (fun d ->
        let options =
          { Synthesize.default_options with
            Synthesize.share_operators = not no_share }
        in
        maybe_telemetry telemetry ~label:(name ^ ".synth") (fun () ->
            let nl, rep =
              Synthesize.synthesize ~options ~macro_of_kernel:d.d_macro d.d_sys
            in
            Format.printf "%a@." Synthesize.pp_report rep;
            if optimize then begin
              let _, st = Netopt.run nl in
              Format.printf "%a@." Netopt.pp_stats st
            end);
        0)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a design and print the gate report.")
    Term.(const run $ design_arg $ no_share_arg $ optimize_arg $ telemetry_arg)

(* emit *)
let dir_arg =
  Arg.(value & opt string "_generated" & info [ "dir"; "o" ] ~docv:"DIR"
         ~doc:"Output directory.")

let emit_cmd =
  let run name dir cycles =
    with_design name (fun d ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        List.iter (Printf.printf "wrote %s\n") (Flow.emit_vhdl d.d_sys ~dir);
        Printf.printf "wrote %s\n" (Flow.emit_testbench d.d_sys ~dir ~cycles);
        let _, rep, path =
          Flow.synthesize_to_verilog ~macro_of_kernel:d.d_macro d.d_sys ~dir
        in
        Printf.printf "wrote %s (%d gate-equivalents)\n" path
          rep.Synthesize.total.Netlist.gate_equivalents;
        (match Flow.emit_ocaml_simulator d.d_sys ~dir ~cycles with
        | path -> Printf.printf "wrote %s\n" path
        | exception Compiled_sim.Unsupported msg ->
          Printf.printf "(standalone simulator skipped: %s)\n" msg);
        let dot = Filename.concat dir (name ^ "_architecture.dot") in
        let oc = open_out dot in
        output_string oc (Cycle_system.to_dot d.d_sys);
        close_out oc;
        Printf.printf "wrote %s\n" dot;
        let vcd = Filename.concat dir (name ^ ".vcd") in
        Vcd.write d.d_sys ~cycles ~path:vcd;
        Printf.printf "wrote %s\n" vcd;
        0)
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Generate VHDL, a test bench, the Verilog netlist and the \
             standalone simulator.")
    Term.(const run $ design_arg $ dir_arg $ cycles_arg 60)

(* profile *)
let profile_design_arg =
  let doc = "Reference design to profile: hcor or dect." in
  Arg.(
    required
    & opt (some string) None
    & info [ "design"; "d" ] ~docv:"DESIGN" ~doc)

let profile_engine_arg =
  let doc = "Engine to profile: interp, compiled, rtl, gates or synth." in
  Arg.(value & opt string "compiled" & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let profile_cmd =
  let run name engine cycles dir =
    with_design name (fun d ->
        let workload =
          match engine with
          | "gates" ->
            Some
              (fun () ->
                ignore
                  (Flow.verify_netlist ~macro_of_kernel:d.d_macro d.d_sys
                     ~cycles))
          | "synth" ->
            Some
              (fun () ->
                let nl, _ =
                  Synthesize.synthesize ~macro_of_kernel:d.d_macro d.d_sys
                in
                ignore (Netopt.run nl))
          | other ->
            Option.map
              (fun e () ->
                ignore
                  (Flow.simulate ~engine:(Ocapi_engine.name_of e) d.d_sys
                     ~cycles))
              (Ocapi_engine.find other)
        in
        match workload with
        | None ->
          Printf.eprintf "unknown engine %S (try %s, gates or synth)\n" engine
            (String.concat ", " (Ocapi_engine.names ()));
          1
        | Some f ->
          let (), report =
            Ocapi_obs.run_with_telemetry ~label:(name ^ "." ^ engine) f
          in
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
          let metrics_path =
            Filename.concat dir
              (Printf.sprintf "%s_%s_metrics.json" name engine)
          in
          let oc = open_out metrics_path in
          output_string oc
            (Ocapi_obs.Json.to_string (Ocapi_obs.report_json report));
          output_char oc '\n';
          close_out oc;
          let trace_path =
            Filename.concat dir (Printf.sprintf "%s_%s.trace.json" name engine)
          in
          Ocapi_obs.write_trace ~path:trace_path;
          Format.printf "%a@." Ocapi_obs.pp_report report;
          Printf.printf "wrote %s\nwrote %s\n" metrics_path trace_path;
          Printf.printf
            "open the trace in Perfetto (https://ui.perfetto.dev) or \
             chrome://tracing\n";
          0)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a design under telemetry and write a metrics report plus a \
          Chrome trace-event file.")
    Term.(
      const run $ profile_design_arg $ profile_engine_arg $ cycles_arg 200
      $ dir_arg)

(* fault *)
let fault_design_arg =
  let doc = "Reference design to run the campaign on: hcor or dect." in
  Arg.(
    required
    & opt (some string) None
    & info [ "design"; "d" ] ~docv:"DESIGN" ~doc)

let campaign_arg =
  let doc = "Campaign: stuck-at (gate level) or seu (register bit flips)." in
  Arg.(value & opt string "seu" & info [ "campaign"; "c" ] ~docv:"KIND" ~doc)

let runs_arg =
  let doc = "SEU runs (each is one independent simulation)." in
  Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Campaign seed; the same seed reproduces the same report." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let max_faults_arg =
  let doc = "Cap the stuck-at campaign to a seeded sample of N faults." in
  Arg.(value & opt (some int) None & info [ "max-faults" ] ~docv:"N" ~doc)

let fault_engine_arg =
  let doc = "SEU engine: interp, compiled or rtl." in
  Arg.(value & opt string "compiled" & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")

let domains_arg =
  let doc =
    "Worker domains for the campaign (1 = serial).  The report is \
     bit-identical for any value."
  in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let fault_cmd =
  let run name campaign cycles runs seed max_faults engine domains json =
    with_design name (fun d ->
        (* Each extra worker domain owns a fresh, isolated copy of the
           design; [build_design] is deterministic, so replicas match. *)
        let replicate () =
          match build_design name with
          | Ok d -> d.d_sys
          | Error e -> failwith e
        in
        match campaign with
        | "stuck-at" | "stuck_at" | "sa" ->
          let report, telemetry =
            Ocapi_obs.run_with_telemetry ~label:(name ^ ".stuck-at")
              (fun () ->
                Ocapi_fault.stuck_at_system ?max_faults ~seed ~domains
                  ~macro_of_kernel:d.d_macro d.d_sys ~cycles)
          in
          if json then
            print_endline
              (Ocapi_obs.Json.to_string (Ocapi_fault.stuck_report_json report))
          else begin
            Format.printf "%a@." Ocapi_fault.pp_stuck_report report;
            Printf.printf "campaign wall time: %.2fs\n"
              telemetry.Ocapi_obs.rp_seconds
          end;
          0
        | "seu" -> (
          match Ocapi_engine.find engine with
          | None ->
            Printf.eprintf "unknown engine %S (try %s)\n" engine
              (String.concat ", " (Ocapi_engine.names ()));
            1
          | Some e ->
            let engine = Ocapi_engine.name_of e in
            let report, telemetry =
              Ocapi_obs.run_with_telemetry ~label:(name ^ ".seu") (fun () ->
                  Ocapi_fault.seu_campaign ~engine ~runs ~seed ~domains
                    ~replicate d.d_sys ~cycles)
            in
            if json then
              print_endline
                (Ocapi_obs.Json.to_string (Ocapi_fault.seu_report_json report))
            else begin
              Format.printf "%a@." Ocapi_fault.pp_seu_report report;
              Printf.printf "campaign wall time: %.2fs (%.0f runs/s)\n"
                telemetry.Ocapi_obs.rp_seconds
                (float_of_int runs /. max 1e-9 telemetry.Ocapi_obs.rp_seconds)
            end;
            0)
        | other ->
          Printf.eprintf "unknown campaign %S (try stuck-at or seu)\n" other;
          1)
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Run a fault campaign: gate-level stuck-at fault simulation with \
          coverage reporting, or a seeded SEU bit-flip campaign classified \
          as masked / silent data corruption / detected.")
    Term.(
      const run $ fault_design_arg $ campaign_arg $ cycles_arg 64 $ runs_arg
      $ seed_arg $ max_faults_arg $ fault_engine_arg $ domains_arg $ json_arg)

let () =
  let info =
    Cmd.info "ocapi" ~version:Ocapi.version
      ~doc:"A programming environment for the design of complex high speed ASICs."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; simulate_cmd; synth_cmd; emit_cmd; profile_cmd;
            fault_cmd ]))
