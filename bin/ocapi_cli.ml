(* The command-line front end of the environment.

     ocapi check <design>
     ocapi simulate <design> [--cycles N] [--engine E] [--json]
     ocapi synth <design> [--no-share]
     ocapi emit <design> [--dir D] [--cycles N]
     ocapi profile --design <design> --engine <E> [--cycles N] [--dir D]
                   [--metrics-out FILE]
     ocapi fault --design <design> [--campaign seu|stuck-at] [--domains N]
     ocapi batch --manifest jobs.jsonl [--domains N] [--artifacts DIR]
                 [--events-out FILE]
     ocapi serve --manifest jobs.jsonl [--workers N] [--state-dir D]
                 [--retries N] [--chaos-prob P] [--die-after N]
     ocapi worker --request JSON --artifact FILE   (spawned by serve)
     ocapi report [--ledger FILE] [--events FILE] [--html FILE] [--gate]
     ocapi fuzz [--seed N] [--count N] [--engines A,B] [--corpus FILE]
                [--shrink] [--deep] [--domains N] [--self-test] [--json]

   Designs: hcor | dect | rs | cpu (the gallery designs of lib/designs). *)

open Cmdliner

type design = { d_sys : Cycle_system.t; d_macro : Dataflow.Kernel.t -> Synthesize.macro_spec option }

let build_design = function
  | "hcor" ->
    let bits = Dect_stimuli.burst ~seed:1 () in
    let tx = Dect_stimuli.transmit bits in
    let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
    let samples =
      Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
    in
    Ok
      {
        d_sys = (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system;
        d_macro = (fun _ -> None);
      }
  | "dect" ->
    let stim c =
      Some
        (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
           (sin (float c *. 0.37) /. 2.2))
    in
    Ok
      {
        d_sys = (Dect_transceiver.create ~stimulus:stim ()).Dect_transceiver.system;
        d_macro = Dect_transceiver.macro_of_kernel;
      }
  | "rs" ->
    Ok
      {
        d_sys =
          (Rs_codec.create
             ~data_stimulus:(Rs_codec.data_stimulus ())
             ~err_stimulus:(Rs_codec.err_stimulus ()) ())
            .Rs_codec.system;
        d_macro = (fun _ -> None);
      }
  | "cpu" ->
    Ok
      {
        d_sys =
          (Acc_cpu.create ~io_stimulus:(Acc_cpu.io_stimulus ()) ())
            .Acc_cpu.system;
        d_macro = Ram_cell.macro_of_kernel;
      }
  | other ->
    Error
      (Printf.sprintf "unknown design %S (try hcor, dect, rs or cpu)" other)

let design_arg =
  let doc = "Reference design to operate on: hcor, dect, rs or cpu." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let cycles_arg default =
  let doc = "Number of clock cycles." in
  Arg.(value & opt int default & info [ "cycles"; "n" ] ~docv:"N" ~doc)

let with_design name f =
  match build_design name with
  | Error e ->
    prerr_endline e;
    1
  | Ok d -> f d

(* check *)
let check_cmd =
  let run name =
    with_design name (fun d ->
        let report = Flow.check d.d_sys in
        Format.printf "%a@." Flow.pp_check_report report;
        if Flow.check_clean report then 0 else 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the semantic checks on a design.")
    Term.(const run $ design_arg)

(* simulate *)
let engine_arg =
  let doc =
    "Cycle engine (resolved from the engine registry: interp, compiled, \
     native, rtl) or gates."
  in
  Arg.(value & opt string "interp" & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"Run under telemetry and print the metrics report afterwards.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Enable the keyed result cache with its on-disk store under \
           _generated/cache/ (warm reruns skip re-simulation).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Print the result as JSON.")

(* Run [f] plainly, or under a fresh telemetry scope with the report
   printed afterwards. *)
let maybe_telemetry flag ~label f =
  if flag then begin
    let result, report = Ocapi_obs.run_with_telemetry ~label f in
    Format.printf "%a@." Ocapi_obs.pp_report report;
    result
  end
  else f ()

let unknown_engine other =
  Printf.eprintf "unknown engine %S (try %s or gates)\n" other
    (String.concat ", " (Ocapi_engine.names ()));
  1

let simulate_cmd =
  let run name cycles engine telemetry cache json =
    with_design name (fun d ->
        if cache then Flow.Cache.enable ~dir:"_generated/cache" ();
        (* [--json] prints the same canonical rendering the batch
           service writes as its simulate artifacts — byte-identical,
           which is what the determinism gate diffs. *)
        let show ~engine histories =
          if json then
            print_endline
              (Ocapi_obs.Json.to_string
                 (Flow.simulate_result_json ~engine ~cycles histories))
          else
            List.iter
              (fun (p, hist) ->
                Printf.printf "%-14s %d tokens" p (List.length hist);
                (match List.rev hist with
                | (c, v) :: _ -> Printf.printf "; last @%d = %s" c (Fixed.to_string v)
                | [] -> ());
                print_newline ())
              histories
        in
        let code =
          match engine with
          | "gates" ->
            let r =
              maybe_telemetry telemetry ~label:(name ^ ".gates") (fun () ->
                  Flow.verify_netlist ~macro_of_kernel:d.d_macro d.d_sys
                    ~cycles)
            in
            Printf.printf "gate-level run: %d vectors, %d mismatches\n"
              r.Synthesize.vectors_checked
              (List.length r.Synthesize.mismatches);
            if r.Synthesize.mismatches = [] then 0 else 1
          | other -> (
            match Ocapi_engine.find other with
            | None -> unknown_engine other
            | Some e ->
              let engine = Ocapi_engine.name_of e in
              show ~engine
                (maybe_telemetry telemetry ~label:("simulate." ^ engine)
                   (fun () -> Flow.simulate ~engine d.d_sys ~cycles));
              0)
        in
        if cache && not json then begin
          let s = Flow.Cache.stats () in
          Printf.printf
            "cache: %d hits (%d from disk), %d misses, %d entries\n"
            s.Flow.Cache.hits s.Flow.Cache.disk_hits s.Flow.Cache.misses
            s.Flow.Cache.entries
        end;
        code)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a design on one of the engines.")
    Term.(
      const run $ design_arg $ cycles_arg 200 $ engine_arg $ telemetry_arg
      $ cache_arg $ json_arg)

(* synth *)
let no_share_arg =
  Arg.(value & flag & info [ "no-share" ] ~doc:"Disable operator sharing.")

let optimize_arg =
  Arg.(value & flag & info [ "optimize" ]
         ~doc:"Run gate-level optimization after synthesis.")

let synth_cmd =
  let run name no_share optimize telemetry =
    with_design name (fun d ->
        let options =
          { Synthesize.default_options with
            Synthesize.share_operators = not no_share }
        in
        maybe_telemetry telemetry ~label:(name ^ ".synth") (fun () ->
            let nl, rep =
              Synthesize.synthesize ~options ~macro_of_kernel:d.d_macro d.d_sys
            in
            Format.printf "%a@." Synthesize.pp_report rep;
            if optimize then begin
              let _, st = Netopt.run nl in
              Format.printf "%a@." Netopt.pp_stats st
            end);
        0)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a design and print the gate report.")
    Term.(const run $ design_arg $ no_share_arg $ optimize_arg $ telemetry_arg)

(* emit *)
let dir_arg =
  Arg.(value & opt string "_generated" & info [ "dir"; "o" ] ~docv:"DIR"
         ~doc:"Output directory.")

let emit_cmd =
  let run name dir cycles =
    with_design name (fun d ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        List.iter (Printf.printf "wrote %s\n") (Flow.emit_vhdl d.d_sys ~dir);
        Printf.printf "wrote %s\n" (Flow.emit_testbench d.d_sys ~dir ~cycles);
        let _, rep, path =
          Flow.synthesize_to_verilog ~macro_of_kernel:d.d_macro d.d_sys ~dir
        in
        Printf.printf "wrote %s (%d gate-equivalents)\n" path
          rep.Synthesize.total.Netlist.gate_equivalents;
        (match Flow.emit_ocaml_simulator d.d_sys ~dir ~cycles with
        | path -> Printf.printf "wrote %s\n" path
        | exception Compiled_sim.Unsupported msg ->
          Printf.printf "(standalone simulator skipped: %s)\n" msg);
        let dot = Filename.concat dir (name ^ "_architecture.dot") in
        let oc = open_out dot in
        output_string oc (Cycle_system.to_dot d.d_sys);
        close_out oc;
        Printf.printf "wrote %s\n" dot;
        let vcd = Filename.concat dir (name ^ ".vcd") in
        Vcd.write d.d_sys ~cycles ~path:vcd;
        Printf.printf "wrote %s\n" vcd;
        0)
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Generate VHDL, a test bench, the Verilog netlist and the \
             standalone simulator.")
    Term.(const run $ design_arg $ dir_arg $ cycles_arg 60)

(* profile *)
let profile_design_arg =
  let doc = "Reference design to profile: hcor, dect, rs or cpu." in
  Arg.(
    required
    & opt (some string) None
    & info [ "design"; "d" ] ~docv:"DESIGN" ~doc)

let profile_engine_arg =
  let doc = "Engine to profile: interp, compiled, native, rtl, gates or synth." in
  Arg.(value & opt string "compiled" & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics report JSON to $(docv) instead of the default \
     DIR/DESIGN_ENGINE_metrics.json."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let profile_cmd =
  let run name engine cycles dir metrics_out =
    with_design name (fun d ->
        let workload =
          match engine with
          | "gates" ->
            Some
              (fun () ->
                ignore
                  (Flow.verify_netlist ~macro_of_kernel:d.d_macro d.d_sys
                     ~cycles))
          | "synth" ->
            Some
              (fun () ->
                let nl, _ =
                  Synthesize.synthesize ~macro_of_kernel:d.d_macro d.d_sys
                in
                ignore (Netopt.run nl))
          | other ->
            Option.map
              (fun e () ->
                ignore
                  (Flow.simulate ~engine:(Ocapi_engine.name_of e) d.d_sys
                     ~cycles))
              (Ocapi_engine.find other)
        in
        match workload with
        | None ->
          Printf.eprintf "unknown engine %S (try %s, gates or synth)\n" engine
            (String.concat ", " (Ocapi_engine.names ()));
          1
        | Some f ->
          let (), report =
            Ocapi_obs.run_with_telemetry ~label:(name ^ "." ^ engine) f
          in
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
          let metrics_path =
            match metrics_out with
            | Some path -> path
            | None ->
              Filename.concat dir
                (Printf.sprintf "%s_%s_metrics.json" name engine)
          in
          let oc = open_out metrics_path in
          output_string oc
            (Ocapi_obs.Json.to_string (Ocapi_obs.report_json report));
          output_char oc '\n';
          close_out oc;
          let trace_path =
            Filename.concat dir (Printf.sprintf "%s_%s.trace.json" name engine)
          in
          Ocapi_obs.write_trace ~path:trace_path;
          Format.printf "%a@." Ocapi_obs.pp_report report;
          Printf.printf "wrote %s\nwrote %s\n" metrics_path trace_path;
          Printf.printf
            "open the trace in Perfetto (https://ui.perfetto.dev) or \
             chrome://tracing\n";
          0)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a design under telemetry and write a metrics report plus a \
          Chrome trace-event file.")
    Term.(
      const run $ profile_design_arg $ profile_engine_arg $ cycles_arg 200
      $ dir_arg $ metrics_out_arg)

(* fault *)
let fault_design_arg =
  let doc = "Reference design to run the campaign on: hcor, dect, rs or cpu." in
  Arg.(
    required
    & opt (some string) None
    & info [ "design"; "d" ] ~docv:"DESIGN" ~doc)

let campaign_arg =
  let doc = "Campaign: stuck-at (gate level) or seu (register bit flips)." in
  Arg.(value & opt string "seu" & info [ "campaign"; "c" ] ~docv:"KIND" ~doc)

let runs_arg =
  let doc = "SEU runs (each is one independent simulation)." in
  Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Campaign seed; the same seed reproduces the same report." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let max_faults_arg =
  let doc = "Cap the stuck-at campaign to a seeded sample of N faults." in
  Arg.(value & opt (some int) None & info [ "max-faults" ] ~docv:"N" ~doc)

let fault_engine_arg =
  let doc = "SEU engine: interp, compiled, native, rtl or gate." in
  Arg.(value & opt string "compiled" & info [ "engine"; "e" ] ~docv:"ENGINE" ~doc)

let optimized_arg =
  let doc =
    "Stuck-at only: run the campaign on both the raw synthesized netlist and \
     the Netopt-optimized one (derived through the IR pass pipeline), \
     reporting pre- and post-optimization coverage side by side."
  in
  Arg.(value & flag & info [ "optimized" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains for the campaign (1 = serial).  The report is \
     bit-identical for any value."
  in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let fault_cmd =
  let run name campaign cycles runs seed max_faults engine domains optimized
      json =
    with_design name (fun d ->
        (* Each extra worker domain owns a fresh, isolated copy of the
           design; [build_design] is deterministic, so replicas match. *)
        let replicate () =
          match build_design name with
          | Ok d -> d.d_sys
          | Error e -> failwith e
        in
        match campaign with
        | "stuck-at" | "stuck_at" | "sa" when optimized ->
          let compare, telemetry =
            Ocapi_obs.run_with_telemetry ~label:(name ^ ".stuck-at-opt")
              (fun () ->
                Ocapi_fault.stuck_at_optimized ?max_faults ~seed ~domains
                  ~macro_of_kernel:d.d_macro d.d_sys ~cycles)
          in
          if json then
            print_endline
              (Ocapi_obs.Json.to_string
                 (Ocapi_fault.stuck_compare_json compare))
          else begin
            Format.printf "%a@." Ocapi_fault.pp_stuck_compare compare;
            Printf.printf "campaign wall time: %.2fs\n"
              telemetry.Ocapi_obs.rp_seconds
          end;
          0
        | "stuck-at" | "stuck_at" | "sa" ->
          let report, telemetry =
            Ocapi_obs.run_with_telemetry ~label:(name ^ ".stuck-at")
              (fun () ->
                Ocapi_fault.stuck_at_system ?max_faults ~seed ~domains
                  ~macro_of_kernel:d.d_macro d.d_sys ~cycles)
          in
          if json then
            print_endline
              (Ocapi_obs.Json.to_string (Ocapi_fault.stuck_report_json report))
          else begin
            Format.printf "%a@." Ocapi_fault.pp_stuck_report report;
            Printf.printf "campaign wall time: %.2fs\n"
              telemetry.Ocapi_obs.rp_seconds
          end;
          0
        | "seu" -> (
          match Ocapi_engine.find engine with
          | None ->
            Printf.eprintf "unknown engine %S (try %s)\n" engine
              (String.concat ", " (Ocapi_engine.names ()));
            1
          | Some e ->
            let engine = Ocapi_engine.name_of e in
            let report, telemetry =
              Ocapi_obs.run_with_telemetry ~label:(name ^ ".seu") (fun () ->
                  Ocapi_fault.seu_campaign ~engine ~runs ~seed ~domains
                    ~replicate d.d_sys ~cycles)
            in
            if json then
              print_endline
                (Ocapi_obs.Json.to_string (Ocapi_fault.seu_report_json report))
            else begin
              Format.printf "%a@." Ocapi_fault.pp_seu_report report;
              Printf.printf "campaign wall time: %.2fs (%.0f runs/s)\n"
                telemetry.Ocapi_obs.rp_seconds
                (float_of_int runs /. max 1e-9 telemetry.Ocapi_obs.rp_seconds)
            end;
            0)
        | other ->
          Printf.eprintf "unknown campaign %S (try stuck-at or seu)\n" other;
          1)
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Run a fault campaign: gate-level stuck-at fault simulation with \
          coverage reporting, or a seeded SEU bit-flip campaign classified \
          as masked / silent data corruption / detected.")
    Term.(
      const run $ fault_design_arg $ campaign_arg $ cycles_arg 64 $ runs_arg
      $ seed_arg $ max_faults_arg $ fault_engine_arg $ domains_arg
      $ optimized_arg $ json_arg)

(* batch *)

(* The reference designs, registered once into the batch registry so
   manifest jobs can name them.  The builders re-run [build_design]:
   deterministic, so every execution (and its dedup fingerprint)
   hashes alike. *)
let register_batch_designs () =
  List.iter
    (fun name ->
      match build_design name with
      | Ok d ->
        Ocapi_batch.register_design ~macro_of_kernel:d.d_macro ~name
          (fun () ->
            match build_design name with
            | Ok d -> d.d_sys
            | Error e -> failwith e)
      | Error _ -> ())
    [ "hcor"; "dect"; "rs"; "cpu" ]

let manifest_arg =
  let doc = "JSONL job manifest: one job object per line (see ocapi batch --help)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "manifest"; "m" ] ~docv:"FILE" ~doc)

let artifacts_arg =
  let doc = "Directory for the per-job JSON artifacts (written asynchronously)." in
  Arg.(
    value
    & opt string "_generated/batch"
    & info [ "artifacts" ] ~docv:"DIR" ~doc)

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Suppress the streaming per-job event lines.")

let events_out_arg =
  let doc =
    "Write the structured event log (job and run lifecycle, one JSON object \
     per line, correlation ids matching the trace spans) to $(docv).  The \
     file is canonical: byte-identical for any --domains value."
  in
  Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"FILE" ~doc)

let batch_cmd =
  let run manifest domains artifacts cache telemetry quiet events_out =
    register_batch_designs ();
    if cache then Flow.Cache.enable ~dir:"_generated/cache" ();
    match Ocapi_batch.read_manifest manifest with
    | Error e ->
      Printf.eprintf "manifest %s: %s\n" manifest e;
      1
    | Ok [] ->
      Printf.eprintf "manifest %s: no jobs\n" manifest;
      1
    | Ok requests ->
      let print_mutex = Mutex.create () in
      let say fmt =
        Printf.ksprintf
          (fun line ->
            Mutex.protect print_mutex (fun () ->
                print_string line;
                print_newline ();
                flush stdout))
          fmt
      in
      (* Events stream from worker domains as the queue drains. *)
      let on_event =
        if quiet then None
        else
          Some
            (function
            | Ocapi_batch.Ev_submitted { ev_label; ev_corr; ev_dedup } ->
              say "[queued ] %s %s%s" ev_corr ev_label
                (if ev_dedup then " (dedup)" else "")
            | Ocapi_batch.Ev_started { ev_label; ev_corr } ->
              say "[running] %s %s" ev_corr ev_label
            | Ocapi_batch.Ev_finished { ev_label; ev_corr; ev_outcome } ->
              say "[%s] %s %s"
                (match ev_outcome with
                | Ocapi_batch.Completed _ -> "done   "
                | Ocapi_batch.Failed _ -> "failed "
                | Ocapi_batch.Cancelled -> "cancel ")
                ev_corr ev_label)
      in
      let go () =
        if events_out <> None then begin
          Ocapi_obs.Events.clear ();
          Ocapi_obs.Events.set_enabled true
        end;
        let t = Ocapi_batch.create ~domains ~artifact_dir:artifacts ?on_event () in
        let handles = List.map (Ocapi_batch.submit_request t) requests in
        (* A signal drains instead of killing: cancel what has not run,
           let running jobs stop at their next progress check, and keep
           the artifact writer alive until its queue is flushed — a
           Ctrl-C must never leave a torn artifact tree. *)
        let interrupted = Atomic.make false in
        let on_signal _ = Atomic.set interrupted true in
        let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
        let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
        let unresolved () =
          List.exists
            (fun h ->
              match Ocapi_batch.status t h with
              | Ocapi_batch.Done _ -> false
              | Ocapi_batch.Queued | Ocapi_batch.Running -> true)
            handles
        in
        while unresolved () && not (Atomic.get interrupted) do
          Thread.delay 0.02
        done;
        if Atomic.get interrupted then begin
          say "interrupted: cancelling queued jobs, draining artifact writer";
          List.iter (fun h -> ignore (Ocapi_batch.cancel t h)) handles
        end;
        let failures = ref 0 in
        List.iter
          (fun h ->
            match Ocapi_batch.await t h with
            | Ocapi_batch.Completed { oc_seconds; oc_queue_seconds; oc_dedup; _ }
              ->
              say "%-9s %s  %.2fs (queued %.2fs)%s%s" "completed"
                (Ocapi_batch.label_of h) oc_seconds oc_queue_seconds
                (if oc_dedup then "  dedup: true" else "")
                (match Ocapi_batch.artifact_path t h with
                | Some p -> "  -> " ^ p
                | None -> "")
            | Ocapi_batch.Failed d ->
              incr failures;
              say "%-9s %s  %s" "failed" (Ocapi_batch.label_of h)
                (Ocapi_error.to_string d)
            | Ocapi_batch.Cancelled ->
              say "%-9s %s" "cancelled" (Ocapi_batch.label_of h))
          handles;
        Ocapi_batch.shutdown t;
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigterm prev_term;
        let s = Ocapi_batch.stats t in
        say
          "batch: %d submitted, %d executed, %d deduped (%.0f%% hit rate), %d \
           completed, %d failed, %d cancelled, %d artifacts"
          s.Ocapi_batch.bs_submitted s.Ocapi_batch.bs_executed
          s.Ocapi_batch.bs_deduped
          (100.0 *. s.Ocapi_batch.bs_dedup_hit_rate)
          s.Ocapi_batch.bs_completed s.Ocapi_batch.bs_failed
          s.Ocapi_batch.bs_cancelled s.Ocapi_batch.bs_artifacts_written;
        (match events_out with
        | Some path ->
          Ocapi_obs.Events.write ~canonical:true ~path ();
          Ocapi_obs.Events.set_enabled false;
          say "wrote %s" path
        | None -> ());
        if Atomic.get interrupted then 130 else if !failures = 0 then 0 else 1
      in
      if telemetry then begin
        let code, report = Ocapi_obs.run_with_telemetry ~label:"batch" go in
        Format.printf "%a@." Ocapi_obs.pp_report report;
        code
      end
      else go ()
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a JSONL manifest of simulate / SEU / stuck-at / engine-sweep \
          jobs on a bounded worker pool, deduplicating identical jobs and \
          writing per-job JSON artifacts asynchronously.  Artifacts are \
          bit-identical for any --domains value.")
    Term.(
      const run $ manifest_arg $ domains_arg $ artifacts_arg $ cache_arg
      $ telemetry_arg $ quiet_arg $ events_out_arg)

(* serve / worker: the resilient campaign service.

   `ocapi serve` supervises one worker *process* per job attempt (the
   batch command's domains share one address space; a crashing engine
   there takes the campaign down).  Every transition is journaled to
   state-dir/journal.jsonl before it takes effect, so a killed server
   restarted with the same command line resumes exactly where it died:
   completed jobs dedup against the journal, in-flight jobs re-run,
   and the artifact tree converges to the undisturbed run's bytes. *)

let worker_cmd =
  let request_arg =
    let doc = "The job as a one-line JSON manifest object." in
    Arg.(required & opt (some string) None & info [ "request" ] ~docv:"JSON" ~doc)
  in
  let artifact_arg =
    let doc = "Path the canonical JSON artifact is atomically written to." in
    Arg.(required & opt (some string) None & info [ "artifact" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc = "Cooperative wall-clock budget (seconds) when the request carries none." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let heartbeat_arg =
    let doc = "Heartbeat period (seconds) on stdout." in
    Arg.(value & opt float 1.0 & info [ "heartbeat-every" ] ~docv:"SECONDS" ~doc)
  in
  let cache_dir_arg =
    let doc = "Enable the disk-backed evaluation cache in $(docv)." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let run request artifact timeout heartbeat_every cache_dir =
    register_batch_designs ();
    match Ocapi_obs.Json.of_string request with
    | Error e ->
      (* Keep the stdout protocol even for a malformed invocation, so
         the supervisor records a structured failure, not a crash. *)
      print_string
        ("fail "
        ^ Ocapi_obs.Json.to_string
            (Ocapi_obs.Json.Obj
               [
                 ("code", Ocapi_obs.Json.String "unsupported");
                 ("message", Ocapi_obs.Json.String ("malformed --request: " ^ e));
               ])
        ^ "\n");
      flush stdout;
      Ocapi_service.exit_failed
    | Ok request ->
      Ocapi_service.worker_main ?timeout ~heartbeat_every ?cache_dir ~request
        ~artifact ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run one batch job in this process for a supervising `ocapi serve` \
          (heartbeats on stdout, artifact written atomically).  Not usually \
          invoked by hand.")
    Term.(
      const run $ request_arg $ artifact_arg $ timeout_arg $ heartbeat_arg
      $ cache_dir_arg)

let serve_cmd =
  let manifest_opt_arg =
    let doc =
      "JSONL job manifest.  Optional: without it the server only resumes \
       journaled work, which is how a crashed campaign is finished."
    in
    Arg.(value & opt (some string) None & info [ "manifest"; "m" ] ~docv:"FILE" ~doc)
  in
  let workers_arg =
    let doc = "Concurrent worker processes." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let state_dir_arg =
    let doc = "State directory holding the crash-recovery journal." in
    Arg.(
      value
      & opt string "_generated/service"
      & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let service_artifacts_arg =
    let doc = "Directory for the per-job JSON artifacts." in
    Arg.(
      value
      & opt string "_generated/service/artifacts"
      & info [ "artifacts" ] ~docv:"DIR" ~doc)
  in
  let retries_arg =
    let doc = "Attempt budget per job before it is poisoned (retries-exhausted)." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_base_arg =
    let doc = "Base retry backoff (seconds); doubles per attempt, with seeded jitter." in
    Arg.(value & opt float 0.5 & info [ "backoff-base" ] ~docv:"SECONDS" ~doc)
  in
  let backoff_cap_arg =
    let doc = "Upper bound on the retry backoff (seconds)." in
    Arg.(value & opt float 30.0 & info [ "backoff-cap" ] ~docv:"SECONDS" ~doc)
  in
  let backoff_seed_arg =
    let doc = "Seed of the deterministic backoff jitter." in
    Arg.(value & opt int 1 & info [ "backoff-seed" ] ~docv:"SEED" ~doc)
  in
  let job_timeout_arg =
    let doc = "Default per-job wall-clock budget (seconds) for requests carrying none." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let heartbeat_timeout_arg =
    let doc = "Kill a worker silent for this long (seconds)." in
    Arg.(value & opt float 30.0 & info [ "heartbeat-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_queue_arg =
    let doc = "Pending-queue bound; submissions beyond it are rejected (overloaded)." in
    Arg.(value & opt int 1024 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let chaos_prob_arg =
    let doc =
      "Chaos mode: probability that a first-attempt worker is SIGKILLed at a \
       seeded random point.  0 disables chaos."
    in
    Arg.(value & opt float 0.0 & info [ "chaos-prob" ] ~docv:"P" ~doc)
  in
  let chaos_seed_arg =
    let doc = "Seed of the chaos kill schedule." in
    Arg.(value & opt int 7 & info [ "chaos-seed" ] ~docv:"SEED" ~doc)
  in
  let chaos_delay_arg =
    let doc = "Chaos kills land uniformly within $(docv) seconds of launch." in
    Arg.(value & opt float 0.5 & info [ "chaos-delay" ] ~docv:"SECONDS" ~doc)
  in
  let die_after_arg =
    let doc =
      "Crash-testing failpoint: SIGKILL the server itself after $(docv) \
       completed jobs (the recovery gate restarts it)."
    in
    Arg.(value & opt (some int) None & info [ "die-after" ] ~docv:"N" ~doc)
  in
  let run manifest workers state_dir artifacts retries backoff_base backoff_cap
      backoff_seed job_timeout heartbeat_timeout max_queue cache chaos_prob
      chaos_seed chaos_delay die_after quiet events_out json =
    register_batch_designs ();
    let requests =
      match manifest with
      | None -> Ok []
      | Some path -> Ocapi_service.read_manifest path
    in
    match requests with
    | Error e ->
      Printf.eprintf "manifest: %s\n" e;
      1
    | Ok requests ->
      if events_out <> None then begin
        Ocapi_obs.Events.clear ();
        Ocapi_obs.Events.set_enabled true
      end;
      let cfg =
        {
          Ocapi_service.default_config with
          cf_workers = workers;
          cf_state_dir = state_dir;
          cf_artifact_dir = artifacts;
          cf_worker_cmd = [ Sys.executable_name; "worker" ];
          cf_retries = retries;
          cf_backoff_base = backoff_base;
          cf_backoff_cap = backoff_cap;
          cf_backoff_seed = backoff_seed;
          cf_job_timeout = job_timeout;
          cf_heartbeat_timeout = heartbeat_timeout;
          cf_max_queue = max_queue;
          cf_cache_dir = (if cache then Some "_generated/cache" else None);
          cf_chaos =
            (if chaos_prob > 0.0 then
               Some
                 {
                   Ocapi_service.ch_seed = chaos_seed;
                   ch_kill_prob = chaos_prob;
                   ch_kill_delay = chaos_delay;
                 }
             else None);
          cf_die_after = die_after;
          cf_on_line =
            (if quiet then None
             else
               Some
                 (fun line ->
                   print_string line;
                   print_newline ();
                   flush stdout));
        }
      in
      let s = Ocapi_service.serve cfg ~requests in
      (match events_out with
      | Some path ->
        Ocapi_obs.Events.write ~canonical:true ~path ();
        Ocapi_obs.Events.set_enabled false
      | None -> ());
      if json then
        print_endline
          (Ocapi_obs.Json.to_string
             (Ocapi_obs.Json.Obj
                [
                  ("submitted", Ocapi_obs.Json.Int s.Ocapi_service.sm_submitted);
                  ("deduped", Ocapi_obs.Json.Int s.sm_deduped);
                  ("recovered", Ocapi_obs.Json.Int s.sm_recovered);
                  ("completed", Ocapi_obs.Json.Int s.sm_completed);
                  ("failed", Ocapi_obs.Json.Int s.sm_failed);
                  ("poisoned", Ocapi_obs.Json.Int s.sm_poisoned);
                  ("rejected", Ocapi_obs.Json.Int s.sm_rejected);
                  ("crashes", Ocapi_obs.Json.Int s.sm_crashes);
                  ("retries", Ocapi_obs.Json.Int s.sm_retries);
                  ("chaos_kills", Ocapi_obs.Json.Int s.sm_chaos_kills);
                  ("drained", Ocapi_obs.Json.Bool s.sm_drained);
                  ("aborted", Ocapi_obs.Json.Bool s.sm_aborted);
                ]))
      else
        Printf.printf
          "serve: %d submitted, %d deduped, %d recovered, %d completed, %d \
           failed (%d poisoned), %d rejected, %d crashes, %d retries, %d \
           chaos kills (%.2fs)\n"
          s.Ocapi_service.sm_submitted s.sm_deduped s.sm_recovered
          s.sm_completed s.sm_failed s.sm_poisoned s.sm_rejected s.sm_crashes
          s.sm_retries s.sm_chaos_kills s.sm_seconds;
      if s.sm_aborted then 130
      else if s.sm_drained then 4
      else if s.sm_failed > 0 || s.sm_rejected > 0 then 1
      else 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a campaign on supervised worker processes with retry/backoff \
          and a crash-recoverable journal: a killed server restarted with \
          the same command line resumes where it died, and the artifact \
          tree converges to the bytes of an undisturbed run.")
    Term.(
      const run $ manifest_opt_arg $ workers_arg $ state_dir_arg
      $ service_artifacts_arg $ retries_arg $ backoff_base_arg $ backoff_cap_arg
      $ backoff_seed_arg $ job_timeout_arg $ heartbeat_timeout_arg
      $ max_queue_arg $ cache_arg $ chaos_prob_arg $ chaos_seed_arg
      $ chaos_delay_arg $ die_after_arg $ quiet_arg $ events_out_arg $ json_arg)

(* report *)

module L = Ocapi_obs.Ledger

let report_cmd =
  let ledger_arg =
    let doc =
      "Perf ledger JSONL to read (default: $(b,\\$OCAPI_LEDGER) or \
       PERF_LEDGER.jsonl)."
    in
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)
  in
  let events_arg =
    let doc = "Structured event log JSONL to summarize alongside the ledger." in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let html_arg =
    let doc =
      "Also write a self-contained static HTML trend page (inline CSS, no \
       external assets) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc)
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Act as a regression gate: exit non-zero when the worst verdict \
             reaches --fail-on.")
  in
  let fail_on_arg =
    let doc =
      "Verdict severity that fails the gate: $(b,collapsed) (throughput \
       collapse beyond --hard-tolerance) or $(b,regressed) (any regression \
       beyond --tolerance)."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("collapsed", `Collapsed); ("regressed", `Regressed) ])
          `Collapsed
      & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)
  in
  let window_arg =
    let doc = "Baseline window: median of up to N prior same-series entries." in
    Arg.(value & opt int 5 & info [ "window" ] ~docv:"N" ~doc)
  in
  let tolerance_arg =
    let doc = "Relative drop below baseline counted as a regression." in
    Arg.(value & opt float 0.2 & info [ "tolerance" ] ~docv:"FRAC" ~doc)
  in
  let hard_tolerance_arg =
    let doc = "Relative drop below baseline counted as a collapse." in
    Arg.(value & opt float 0.5 & info [ "hard-tolerance" ] ~docv:"FRAC" ~doc)
  in
  let run ledger events html json gate fail_on window tolerance hard_tolerance
      =
    let ledger =
      match ledger with Some p -> p | None -> L.default_path ()
    in
    match L.load ~path:ledger () with
    | Error e ->
      Printf.eprintf "ledger %s: %s\n" ledger e;
      2
    | Ok entries -> (
      let loaded_events =
        match events with
        | None -> Ok []
        | Some path -> Ocapi_obs.Events.load path
      in
      match loaded_events with
      | Error e ->
        Printf.eprintf "events: %s\n" e;
        2
      | Ok evs ->
        let vs =
          L.verdicts ~window ~tolerance ~hard_tolerance entries
        in
        if json then
          print_endline (Ocapi_obs.Json.to_string (L.verdicts_json vs))
        else if entries = [] then
          Printf.printf
            "perf ledger %s: no entries yet (run `make bench-smoke` to \
             record some)\n"
            ledger
        else begin
          Printf.printf "perf ledger %s: %d entries, %d series\n" ledger
            (List.length entries) (List.length vs);
          Format.printf "%a@."
            (fun ppf ->
              L.pp_trends ~window ~tolerance ~hard_tolerance ppf)
            entries;
          if evs <> [] then begin
            let counts = Hashtbl.create 8 in
            List.iter
              (fun j ->
                match Ocapi_obs.Json.member "event" j with
                | Some (Ocapi_obs.Json.String k) ->
                  Hashtbl.replace counts k
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
                | _ -> ())
              evs;
            Printf.printf "event log: %d events (%s)\n" (List.length evs)
              (String.concat ", "
                 (Hashtbl.fold
                    (fun k n acc -> Printf.sprintf "%s %d" k n :: acc)
                    counts []
                 |> List.sort String.compare))
          end
        end;
        (match html with
        | Some path ->
          let page =
            L.html_page ~events:evs ~window ~tolerance ~hard_tolerance entries
          in
          let oc = open_out_bin path in
          output_string oc page;
          close_out oc;
          Printf.printf "wrote %s\n" path
        | None -> ());
        if gate then begin
          let worst = L.worst_status vs in
          let failed =
            match (worst, fail_on) with
            | L.Collapsed, _ -> true
            | L.Regressed, `Regressed -> true
            | _ -> false
          in
          List.iter
            (fun v ->
              match v.L.v_status with
              | L.Regressed | L.Collapsed ->
                Printf.printf
                  "perf gate: %s [%s] %s: %.4g %s vs baseline %.4g (%+.1f%%)\n"
                  (L.status_label v.L.v_status)
                  v.L.v_engine v.L.v_bench v.L.v_latest.L.en_value
                  v.L.v_latest.L.en_unit v.L.v_baseline (v.L.v_delta *. 100.)
              | _ -> ())
            vs;
          Printf.printf "perf gate: worst status = %s (failing on %s)\n"
            (L.status_label worst)
            (match fail_on with
            | `Collapsed -> "collapsed"
            | `Regressed -> "regressed");
          if failed then 1 else 0
        end
        else 0)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the perf ledger (and optionally an event log) as a terminal \
          trend summary, a machine-readable verdict (--json), a regression \
          gate (--gate), or a static HTML page (--html).")
    Term.(
      const run $ ledger_arg $ events_arg $ html_arg $ json_arg $ gate_arg
      $ fail_on_arg $ window_arg $ tolerance_arg $ hard_tolerance_arg)

(* fuzz *)

let fuzz_cmd =
  let fuzz_seed_arg =
    let doc = "Campaign seed; per-design generator seeds derive from it." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let count_arg =
    let doc = "Fresh generated designs to check." in
    Arg.(value & opt int 50 & info [ "count" ] ~docv:"N" ~doc)
  in
  let size_arg =
    let doc = "Generator size knob (1-4): larger draws bigger designs." in
    Arg.(value & opt int 2 & info [ "size" ] ~docv:"K" ~doc)
  in
  let engines_arg =
    let doc =
      "Comma-separated engine roster to cross-check (default: every \
       registered engine)."
    in
    Arg.(value & opt (some string) None & info [ "engines" ] ~docv:"A,B" ~doc)
  in
  let corpus_arg =
    let doc =
      "JSONL reproducer corpus: its entries are replayed before the fresh \
       designs, and this run's new reproducers are appended to it."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let repro_out_arg =
    let doc =
      "Also write this run's reproducers (shrunk failing genomes) to $(docv), \
       replacing it.  The file is written even when empty, so CI can upload \
       it unconditionally."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "reproducers-out" ] ~docv:"FILE" ~doc)
  in
  let shrink_arg =
    let doc = "Shrink failing designs to minimal reproducers." in
    Arg.(value & opt bool true & info [ "shrink" ] ~docv:"BOOL" ~doc)
  in
  let deep_arg =
    let doc = "Also cross-check SEU classification and stuck-at determinism." in
    Arg.(value & flag & info [ "deep" ] ~doc)
  in
  let self_test_arg =
    let doc =
      "Harness self-test: cross-check the interpreter against a deliberately \
       broken engine and require the campaign to catch it (exit 0 when every \
       design diverges and a shrunk reproducer is produced)."
    in
    Arg.(value & flag & info [ "self-test" ] ~doc)
  in
  let run seed count size engines corpus repro_out shrink deep domains
      self_test json =
    let resolve names =
      List.fold_left
        (fun acc n ->
          match acc with
          | Error _ -> acc
          | Ok l -> (
            match Ocapi_engine.find n with
            | Some e -> Ok (Ocapi_engine.name_of e :: l)
            | None -> Error n))
        (Ok []) names
      |> Result.map List.rev
    in
    let engines =
      if self_test then
        Ok (Some [ "interp"; Ocapi_diff.register_buggy_engine () ])
      else
        match engines with
        | None -> Ok None
        | Some s -> (
          match resolve (String.split_on_char ',' s) with
          | Ok l -> Ok (Some l)
          | Error n -> Error n)
    in
    match engines with
    | Error n -> unknown_engine n
    | Ok engines -> (
      let loaded =
        match corpus with
        | None -> Ok []
        | Some path -> Ocapi_diff.Corpus.load path
      in
      match loaded with
      | Error e ->
        Printf.eprintf "corpus: %s\n" e;
        2
      | Ok entries ->
        let report =
          Ocapi_diff.fuzz ?engines ~deep ~shrink_failures:shrink ~size ~domains
            ~corpus:entries ~seed ~count ()
        in
        if json then
          print_endline
            (Ocapi_obs.Json.to_string (Ocapi_diff.report_json report))
        else Format.printf "%a@." Ocapi_diff.pp_report report;
        let reproducers = Ocapi_diff.report_reproducers report in
        (match (corpus, reproducers) with
        | Some path, _ :: _ ->
          Ocapi_diff.Corpus.append path reproducers;
          if not json then
            Printf.printf "appended %d reproducer(s) to %s\n"
              (List.length reproducers) path
        | _ -> ());
        (match repro_out with
        | Some path ->
          let oc = open_out path in
          List.iter
            (fun e ->
              output_string oc
                (Ocapi_obs.Json.to_string (Ocapi_diff.Corpus.entry_json e));
              output_char oc '\n')
            reproducers;
          close_out oc;
          if not json then
            Printf.printf "wrote %s (%d reproducer(s))\n" path
              (List.length reproducers)
        | None -> ());
        if self_test then
          if
            report.Ocapi_diff.fz_divergent > 0
            && List.exists
                 (fun r -> r.Ocapi_diff.dr_shrunk <> None)
                 report.Ocapi_diff.fz_results
          then begin
            if not json then
              print_endline
                "self-test: the harness caught the injected engine bug and \
                 shrank a reproducer";
            0
          end
          else begin
            Printf.eprintf
              "self-test FAILED: the injected engine bug went undetected\n";
            1
          end
        else if
          report.Ocapi_diff.fz_divergent = 0
          && report.Ocapi_diff.fz_replay_failures = 0
        then 0
        else 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential-fuzz the engine stack: generate seeded random designs, \
          run each on every engine, diff the probe histories (plus netlist \
          equivalence and, with --deep, fault-campaign cross-checks), and \
          shrink any failure to a replayable corpus reproducer.  The report \
          is canonical: bit-identical for any --domains value.")
    Term.(
      const run $ fuzz_seed_arg $ count_arg $ size_arg $ engines_arg
      $ corpus_arg $ repro_out_arg $ shrink_arg $ deep_arg $ domains_arg
      $ self_test_arg $ json_arg)

let () =
  let info =
    Cmd.info "ocapi" ~version:Ocapi.version
      ~doc:"A programming environment for the design of complex high speed ASICs."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; simulate_cmd; synth_cmd; emit_cmd; profile_cmd;
            fault_cmd; batch_cmd; serve_cmd; worker_cmd; report_cmd;
            fuzz_cmd ]))
