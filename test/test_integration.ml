(* Cross-layer integration: the Flow facade, the Metrics harness, and
   the full Table 1 engine set exercised on HCOR. *)

let hcor () =
  let bits = Dect_stimuli.burst ~seed:19 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~taps:[| 1.0; 0.1 |] ~snr_db:30.0 ~seed:19 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

let test_flow_check_clean () =
  let sys = hcor () in
  let report = Flow.check sys in
  if not (Flow.check_clean report) then
    Alcotest.failf "HCOR check not clean: %s"
      (Format.asprintf "%a" Flow.pp_check_report report)

let test_engines_agree_on_hcor () =
  let sys = hcor () in
  Alcotest.(check (list string)) "agree" [] (Flow.engines_agree sys ~cycles:120)

let test_metrics_all_engines () =
  let sys = hcor () in
  let cycles = 150 in
  let ms =
    List.map
      (fun e -> Metrics.measure ~ocaml_source_lines:140 sys e ~cycles)
      Metrics.all_engines
  in
  List.iter
    (fun m ->
      Alcotest.(check int) "cycles" cycles m.Metrics.m_cycles;
      Alcotest.(check bool)
        (Metrics.engine_label m.Metrics.m_engine ^ " speed positive")
        true
        (m.Metrics.m_cycles_per_second > 0.);
      Alcotest.(check bool) "source lines recorded" true (m.Metrics.m_source_lines > 0))
    ms;
  (* The paper's ordering claims (C2): compiled is the fastest of the
     software engines and the gate-level netlist is the slowest. *)
  let speed e =
    let m = List.find (fun m -> m.Metrics.m_engine = e) ms in
    m.Metrics.m_cycles_per_second
  in
  Alcotest.(check bool) "compiled > interpreted" true
    (speed Metrics.Compiled_code > speed Metrics.Interpreted_objects);
  Alcotest.(check bool) "interpreted > netlist" true
    (speed Metrics.Interpreted_objects > speed Metrics.Gate_netlist);
  Alcotest.(check bool) "compiled > rtl" true
    (speed Metrics.Compiled_code > speed Metrics.Rt_event_driven);
  (* C1: the OCaml capture is several times smaller than generated VHDL. *)
  let lines e =
    (List.find (fun m -> m.Metrics.m_engine = e) ms).Metrics.m_source_lines
  in
  Alcotest.(check bool) "capture smaller than RT VHDL" true
    (lines Metrics.Rt_event_driven > 2 * 140)

let test_metrics_table_rendering () =
  let sys = hcor () in
  let m = Metrics.measure ~ocaml_source_lines:100 sys Metrics.Interpreted_objects ~cycles:50 in
  let text = Format.asprintf "%a" (fun ppf -> Metrics.pp_table ppf ~design:"HCOR" ~gates:7000) [ m ] in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has design" true (contains "HCOR");
  Alcotest.(check bool) "has engine label" true (contains "interpreted obj");
  Alcotest.(check bool) "has size" true (contains "7K")

let test_source_line_counter () =
  let tmp = Filename.temp_file "ocapi_lines" ".txt" in
  let oc = open_out tmp in
  output_string oc "a\nb\nc\n";
  close_out oc;
  Alcotest.(check int) "three lines" 3 (Metrics.source_lines_of_files [ tmp ]);
  Sys.remove tmp

let suite =
  [
    Alcotest.test_case "flow check clean on HCOR" `Quick test_flow_check_clean;
    Alcotest.test_case "engines agree on HCOR" `Quick test_engines_agree_on_hcor;
    Alcotest.test_case "metrics across all engines" `Slow test_metrics_all_engines;
    Alcotest.test_case "metrics table rendering" `Quick test_metrics_table_rendering;
    Alcotest.test_case "source line counter" `Quick test_source_line_counter;
  ]
