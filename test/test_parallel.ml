(* Tests for the domain pool and the parallel campaign paths: the pool
   itself (identity merge, chunking, worker failure), bit-identity of
   parallel fault campaigns against the serial reports on multiple
   engines, and cross-domain telemetry aggregation. *)

let dect_design () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float_of_int c *. 0.37) /. 2.2)))
      ()
  in
  d.Dect_transceiver.system

let hcor_design () =
  let bits = Dect_stimuli.burst ~seed:1 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

(* --- the pool itself ------------------------------------------------------- *)

(* Results land in task-index order whatever the pool size or chunk:
   the merged array must equal the serial map exactly. *)
let test_pool_identity () =
  let tasks = 97 in
  let expect = Array.init tasks (fun i -> (i * i) mod 31) in
  List.iter
    (fun (domains, chunk) ->
      let got =
        Ocapi_parallel.map_tasks ~domains ?chunk
          ~make_state:(fun _k -> ())
          ~tasks
          ~f:(fun () i -> (i * i) mod 31)
          ()
      in
      Alcotest.(check (array int))
        (Printf.sprintf "domains %d" domains)
        expect got)
    [ (1, None); (2, None); (4, None); (4, Some 1); (3, Some 100) ]

let test_pool_states_are_per_worker () =
  (* Each worker only ever sees the state built for its index, so
     mutating a per-worker counter from tasks is race-free, and the
     per-worker totals account for every task exactly once. *)
  let domains = 4 and tasks = 200 in
  let states = ref [] in
  let _ =
    Ocapi_parallel.map_tasks ~domains
      ~make_state:(fun _k ->
        let r = ref 0 in
        states := r :: !states;
        r)
      ~tasks
      ~f:(fun acc _i -> incr acc)
      ()
  in
  Alcotest.(check int) "one state per worker" domains (List.length !states);
  Alcotest.(check int)
    "every task ran exactly once" tasks
    (List.fold_left (fun a r -> a + !r) 0 !states)

let test_pool_worker_error () =
  match
    Ocapi_parallel.map_tasks ~domains:3
      ~make_state:(fun _ -> ())
      ~tasks:30
      ~f:(fun () i -> if i = 17 then failwith "boom" else i)
      ()
  with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Ocapi_parallel.Worker_error { we_exn = Failure msg; _ } ->
    Alcotest.(check string) "original exception preserved" "boom" msg
  | exception e ->
    Alcotest.failf "expected Worker_error, got %s" (Printexc.to_string e)

(* --- parallel campaigns are bit-identical to serial ------------------------ *)

let check_seu_parallel engine sys_of =
  let run domains =
    Ocapi_fault.seu_campaign ~engine ~runs:40 ~seed:11 ~domains
      ~replicate:sys_of (sys_of ()) ~cycles:20
  in
  let serial = run 1 in
  Alcotest.(check bool)
    "campaign classified something" true
    (serial.Ocapi_fault.seu_masked + serial.Ocapi_fault.seu_sdc
     + serial.Ocapi_fault.seu_detected
    = 40);
  List.iter
    (fun domains ->
      let par = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "%s report at %d domains = serial" engine domains)
        true (par = serial))
    [ 2; 4 ]

let test_seu_parallel_compiled () = check_seu_parallel "compiled" dect_design
let test_seu_parallel_interp () = check_seu_parallel "interp" hcor_design

let test_seu_parallel_needs_replicate () =
  match
    Ocapi_fault.seu_campaign ~runs:4 ~domains:2 (dect_design ()) ~cycles:8
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_stuck_at_parallel () =
  let run domains =
    Ocapi_fault.stuck_at_system ~max_faults:60 ~seed:5 ~domains
      (hcor_design ()) ~cycles:16
  in
  let serial = run 1 in
  List.iter
    (fun domains ->
      let par = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "stuck-at report at %d domains = serial" domains)
        true (par = serial))
    [ 2; 4 ]

(* --- cross-domain telemetry ------------------------------------------------ *)

(* The campaign counters of a parallel run, merged at join, must equal
   the serial run's counters exactly. *)
let test_parallel_telemetry_counters () =
  let counters domains =
    Ocapi_obs.reset ();
    Ocapi_obs.enable ();
    ignore
      (Ocapi_fault.seu_campaign ~engine:"compiled" ~runs:30 ~seed:3 ~domains
         ~replicate:dect_design (dect_design ()) ~cycles:16);
    let snap =
      List.filter_map
        (fun (name, v) ->
          match v with
          | Ocapi_obs.Counter_v n
            when String.length name >= 9 && String.sub name 0 9 = "fault.seu" ->
            Some (name, n)
          | _ -> None)
        (Ocapi_obs.snapshot ())
    in
    Ocapi_obs.disable ();
    Ocapi_obs.reset ();
    snap
  in
  let serial = counters 1 in
  let par = counters 4 in
  Alcotest.(check bool) "campaign counted runs" true (serial <> []);
  Alcotest.(check int)
    "serial counters total 30" 30
    (List.fold_left (fun a (_, n) -> a + n) 0 serial);
  Alcotest.(check (list (pair string int))) "merged = serial" serial par

(* --- parallel engine cross-verification ------------------------------------ *)

let test_engine_sweep_parallel () =
  Alcotest.(check (list string))
    "parallel sweep finds no disagreement" []
    (Flow.engines_agree ~domains:3 ~replicate:hcor_design (hcor_design ())
       ~cycles:40)

let suite =
  [
    Alcotest.test_case "pool merge identity" `Quick test_pool_identity;
    Alcotest.test_case "pool per-worker states" `Quick
      test_pool_states_are_per_worker;
    Alcotest.test_case "pool worker error" `Quick test_pool_worker_error;
    Alcotest.test_case "SEU parallel = serial (compiled)" `Quick
      test_seu_parallel_compiled;
    Alcotest.test_case "SEU parallel = serial (interp)" `Quick
      test_seu_parallel_interp;
    Alcotest.test_case "SEU domains>1 needs replicate" `Quick
      test_seu_parallel_needs_replicate;
    Alcotest.test_case "stuck-at parallel = serial" `Quick
      test_stuck_at_parallel;
    Alcotest.test_case "parallel telemetry merge" `Quick
      test_parallel_telemetry_counters;
    Alcotest.test_case "engine sweep parallel" `Quick
      test_engine_sweep_parallel;
  ]
