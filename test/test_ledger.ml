(* The perf ledger and event log: entry JSON round-trips, concurrent
   appends from multiple domains interleave whole lines, the rolling
   baseline and verdict math classifies synthetic histories correctly,
   and the canonical event form is independent of emission order. *)

module J = Ocapi_obs.Json
module L = Ocapi_obs.Ledger
module E = Ocapi_obs.Events

let tmp_ledger tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ocapi-test-ledger-%s-%d.jsonl" tag (Unix.getpid ()))

let with_ledger tag f =
  let path = tmp_ledger tag in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---- entry JSON round-trip ---------------------------------------------- *)

let test_entry_roundtrip () =
  let e =
    L.entry ~digest:"abc123" ~unit_:"runs/s" ~domains:3 ~bench:"t:bench"
      ~engine:"compiled" 123.456
  in
  Alcotest.(check bool) "commit stamped" true (String.length e.L.en_commit > 0);
  Alcotest.(check bool) "host stamped" true (String.length e.L.en_host > 0);
  match L.entry_of_json (L.entry_json e) with
  | Error msg -> Alcotest.fail ("entry_json rejected by entry_of_json: " ^ msg)
  | Ok e' ->
    Alcotest.(check string) "bench" e.L.en_bench e'.L.en_bench;
    Alcotest.(check string) "engine" e.L.en_engine e'.L.en_engine;
    Alcotest.(check string) "digest" e.L.en_digest e'.L.en_digest;
    Alcotest.(check string) "unit" e.L.en_unit e'.L.en_unit;
    Alcotest.(check string) "commit" e.L.en_commit e'.L.en_commit;
    Alcotest.(check string) "host" e.L.en_host e'.L.en_host;
    Alcotest.(check int) "domains" e.L.en_domains e'.L.en_domains;
    Alcotest.(check bool) "value bits" true (e.L.en_value = e'.L.en_value);
    Alcotest.(check bool) "ts bits" true (e.L.en_ts = e'.L.en_ts)

let test_append_load () =
  with_ledger "basic" (fun path ->
      Alcotest.(check bool) "missing file loads empty" true
        (L.load ~path () = Ok []);
      let mk i =
        L.entry ~digest:"d" ~unit_:"cycles/s" ~bench:"t:a" ~engine:"e"
          (float_of_int i)
      in
      List.iter (fun i -> L.append ~path (mk i)) [ 1; 2; 3 ];
      match L.load ~path () with
      | Error msg -> Alcotest.fail msg
      | Ok entries ->
        Alcotest.(check (list (float 0.0)))
          "file order preserved" [ 1.0; 2.0; 3.0 ]
          (List.map (fun e -> e.L.en_value) entries))

(* ---- concurrent appends -------------------------------------------------- *)

let test_concurrent_appends () =
  with_ledger "par" (fun path ->
      let domains = 4 and per_domain = 25 in
      let worker d () =
        for i = 1 to per_domain do
          L.append ~path
            (L.entry ~digest:"d" ~unit_:"runs/s"
               ~bench:(Printf.sprintf "par:%d" d)
               ~engine:"e"
               (float_of_int i))
        done
      in
      let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join ds;
      match L.load ~path () with
      | Error msg -> Alcotest.fail ("concurrent ledger corrupt: " ^ msg)
      | Ok entries ->
        Alcotest.(check int) "no line lost or torn" (domains * per_domain)
          (List.length entries);
        (* Per-series order must still be 1..per_domain: appends are
           atomic whole lines, and each domain appends sequentially. *)
        List.iter
          (fun d ->
            let series =
              List.filter_map
                (fun e ->
                  if e.L.en_bench = Printf.sprintf "par:%d" d then
                    Some e.L.en_value
                  else None)
                entries
            in
            Alcotest.(check (list (float 0.0)))
              (Printf.sprintf "domain %d series ordered" d)
              (List.init per_domain (fun i -> float_of_int (i + 1)))
              series)
          (List.init domains Fun.id))

(* ---- baseline and verdict math ------------------------------------------ *)

let series bench values =
  List.map
    (fun v -> L.entry ~digest:"d" ~unit_:"x/s" ~bench ~engine:"e" v)
    values

let verdict_of bench entries =
  match
    List.find_opt (fun v -> v.L.v_bench = bench) (L.verdicts entries)
  with
  | Some v -> v
  | None -> Alcotest.fail ("no verdict for " ^ bench)

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (L.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (L.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "single" 7.0 (L.median [ 7.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (L.median []))

let test_verdict_statuses () =
  let entries =
    series "fresh" [ 100.0 ]
    @ series "steady" [ 100.0; 101.0; 99.0; 100.5 ]
    @ series "improved" [ 100.0; 101.0; 99.0; 130.0 ]
    @ series "regressed" [ 100.0; 101.0; 99.0; 70.0 ]
    @ series "collapsed" [ 100.0; 101.0; 99.0; 100.5; 10.0 ]
  in
  let check bench expect =
    let v = verdict_of bench entries in
    Alcotest.(check string) bench
      (L.status_label expect)
      (L.status_label v.L.v_status)
  in
  check "fresh" L.Fresh;
  check "steady" L.Steady;
  check "improved" L.Improved;
  check "regressed" L.Regressed;
  check "collapsed" L.Collapsed;
  let v = verdict_of "collapsed" entries in
  Alcotest.(check int) "baseline window" 4 v.L.v_window;
  Alcotest.(check (float 1e-9)) "baseline median" 100.25 v.L.v_baseline;
  Alcotest.(check (float 1e-6)) "delta" (-0.900249) v.L.v_delta;
  Alcotest.(check string) "worst over all series" "collapsed"
    (L.status_label (L.worst_status (L.verdicts entries)))

let test_verdict_window () =
  (* Only the [window] entries immediately before the newest feed the
     baseline: the ancient 1000.0 must not drag it up. *)
  let entries =
    series "w" [ 1000.0; 100.0; 100.0; 100.0; 100.0; 100.0; 99.0 ]
  in
  let v =
    match L.verdicts ~window:5 entries with
    | [ v ] -> v
    | _ -> Alcotest.fail "expected one verdict"
  in
  Alcotest.(check (float 1e-9)) "windowed baseline" 100.0 v.L.v_baseline;
  Alcotest.(check string) "steady" "steady" (L.status_label v.L.v_status)

let test_series_split () =
  (* Same bench, different engine or digest: distinct series.  Hostname
     is deliberately not part of the key. *)
  let e1 = L.entry ~digest:"d1" ~bench:"b" ~engine:"x" 1.0 in
  let e2 = L.entry ~digest:"d1" ~bench:"b" ~engine:"y" 2.0 in
  let e3 = L.entry ~digest:"d2" ~bench:"b" ~engine:"x" 3.0 in
  Alcotest.(check int) "three series" 3
    (List.length (L.series_of [ e1; e2; e3 ]));
  Alcotest.(check int) "three verdicts, all fresh" 3
    (List.length
       (List.filter
          (fun v -> v.L.v_status = L.Fresh)
          (L.verdicts [ e1; e2; e3 ])))

let test_sparkline () =
  let s = L.sparkline [ 1.0; 8.0 ] in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  Alcotest.(check string) "flat series renders mid-blocks" ""
    (let flat = L.sparkline [ 5.0; 5.0; 5.0 ] in
     if String.length flat > 0 then "" else "empty")

(* ---- canonical event log ------------------------------------------------- *)

let render events =
  String.concat "\n"
    (List.map (fun e -> J.to_string (E.to_json ~ts:false e)) events)

let test_events_canonical_order_independent () =
  let emit_all order =
    E.clear ();
    E.set_enabled true;
    List.iter
      (fun (corr, kind) ->
        E.emit ~corr ~fields:[ ("label", J.String corr) ] kind)
      order;
    let evs = E.events () in
    E.set_enabled false;
    E.clear ();
    E.canonicalize evs
  in
  let a =
    emit_all
      [
        ("j1", "job_submitted"); ("j2", "job_submitted"); ("j1", "job_started");
        ("j2", "job_started"); ("j2", "job_completed"); ("j1", "job_completed");
      ]
  in
  let b =
    (* The same lifecycle, interleaved the other way round — as a
       different domain schedule would produce it. *)
    emit_all
      [
        ("j2", "job_submitted"); ("j1", "job_submitted"); ("j2", "job_started");
        ("j2", "job_completed"); ("j1", "job_started"); ("j1", "job_completed");
      ]
  in
  Alcotest.(check string) "canonical form ignores arrival order" (render a)
    (render b);
  Alcotest.(check int) "seq renumbered from 1" 1
    (match a with e :: _ -> e.E.e_seq | [] -> -1);
  List.iter
    (fun e -> Alcotest.(check (float 0.0)) "ts dropped" 0.0 e.E.e_ts)
    a

let test_events_write_load () =
  with_ledger "events" (fun path ->
      E.clear ();
      E.set_enabled true;
      E.emit ~corr:"c1" ~fields:[ ("label", J.String "x") ] "job_submitted";
      E.emit ~corr:"c1" "job_completed";
      E.write ~canonical:true ~path ();
      E.set_enabled false;
      E.clear ();
      match E.load path with
      | Error msg -> Alcotest.fail msg
      | Ok lines ->
        Alcotest.(check int) "two events" 2 (List.length lines);
        Alcotest.(check bool) "first is job_submitted" true
          (match lines with
          | first :: _ -> J.member "event" first = Some (J.String "job_submitted")
          | [] -> false))

let suite =
  [
    Alcotest.test_case "entry JSON round trip" `Quick test_entry_roundtrip;
    Alcotest.test_case "append and load in file order" `Quick test_append_load;
    Alcotest.test_case "concurrent domain appends" `Quick
      test_concurrent_appends;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "verdict statuses" `Quick test_verdict_statuses;
    Alcotest.test_case "baseline window bounds history" `Quick
      test_verdict_window;
    Alcotest.test_case "series keyed by bench/engine/digest" `Quick
      test_series_split;
    Alcotest.test_case "sparkline rendering" `Quick test_sparkline;
    Alcotest.test_case "canonical events ignore arrival order" `Quick
      test_events_canonical_order_independent;
    Alcotest.test_case "event log write and load" `Quick
      test_events_write_load;
  ]
