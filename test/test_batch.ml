(* Tests for the batch campaign service: priority classes with FIFO
   order inside each, cooperative timeout and cancellation as
   structured outcomes, dedup coalescing of identical submissions, and
   the async artifact writer (flushed on shutdown, bit-identical to the
   direct library call). *)

let dect_design () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float_of_int c *. 0.37) /. 2.2)))
      ()
  in
  d.Dect_transceiver.system

let hcor_design () =
  let bits = Dect_stimuli.burst ~seed:1 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

let ensure_designs =
  lazy
    (Ocapi_batch.register_design ~name:"tb-hcor" hcor_design;
     Ocapi_batch.register_design
       ~macro_of_kernel:Dect_transceiver.macro_of_kernel ~name:"tb-dect"
       dect_design)

(* Custom-job tags are dedup keys; keep them unique across tests. *)
let tag_counter = ref 0

let fresh_tag base =
  incr tag_counter;
  Printf.sprintf "tb-%s-%d" base !tag_counter

(* A Custom job that holds its worker until [release] — with it a
   1-domain service becomes a deterministic scheduling fixture: jobs
   submitted while the blocker runs queue up and drain in scheduling
   order. *)
let make_blocker () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let started = ref false in
  let released = ref false in
  let job =
    Ocapi_batch.Custom
      {
        cu_tag = fresh_tag "blocker";
        cu_body =
          (fun ~progress:_ ->
            Mutex.protect m (fun () ->
                started := true;
                Condition.broadcast c;
                while not !released do
                  Condition.wait c m
                done);
            Ocapi_obs.Json.Null);
      }
  in
  let wait_started () =
    Mutex.protect m (fun () ->
        while not !started do
          Condition.wait c m
        done)
  in
  let release () =
    Mutex.protect m (fun () ->
        released := true;
        Condition.broadcast c)
  in
  (job, wait_started, release)

let test_priority_fifo () =
  let t = Ocapi_batch.create ~domains:1 () in
  let blocker, wait_started, release = make_blocker () in
  let hb = Ocapi_batch.submit t blocker in
  wait_started ();
  let order_m = Mutex.create () in
  let order = ref [] in
  let mk tag =
    Ocapi_batch.Custom
      {
        cu_tag = fresh_tag tag;
        cu_body =
          (fun ~progress:_ ->
            Mutex.protect order_m (fun () -> order := tag :: !order);
            Ocapi_obs.Json.Null);
      }
  in
  let submit p tag = Ocapi_batch.submit ~priority:p t (mk tag) in
  (* Interleave the classes on submission (sequenced lets — a list
     literal would evaluate right to left); the drain order must be
     class-major, submission-minor. *)
  let h1 = submit Ocapi_batch.Low "l1" in
  let h2 = submit Ocapi_batch.Normal "n1" in
  let h3 = submit Ocapi_batch.High "h1" in
  let h4 = submit Ocapi_batch.Low "l2" in
  let h5 = submit Ocapi_batch.Normal "n2" in
  let h6 = submit Ocapi_batch.High "h2" in
  let hs = [ h1; h2; h3; h4; h5; h6 ] in
  release ();
  List.iter (fun h -> ignore (Ocapi_batch.await t h)) hs;
  ignore (Ocapi_batch.await t hb);
  Ocapi_batch.shutdown t;
  Alcotest.(check (list string))
    "high first, FIFO within each class"
    [ "h1"; "h2"; "n1"; "n2"; "l1"; "l2" ]
    (List.rev !order)

let test_timeout_is_structured () =
  let t = Ocapi_batch.create ~domains:1 () in
  (* A job that never finishes on its own: only the cooperative
     deadline in [progress] can stop it. *)
  let h =
    Ocapi_batch.submit ~timeout:0.2 t
      (Ocapi_batch.Custom
         {
           cu_tag = fresh_tag "spin";
           cu_body =
             (fun ~progress ->
               while true do
                 progress ()
               done;
               Ocapi_obs.Json.Null);
         })
  in
  let t0 = Unix.gettimeofday () in
  (match Ocapi_batch.await t h with
  | Ocapi_batch.Failed e ->
    Alcotest.(check bool)
      "error code is Timeout" true
      (e.Ocapi_error.e_code = Ocapi_error.Timeout)
  | Ocapi_batch.Completed _ -> Alcotest.fail "spin job completed"
  | Ocapi_batch.Cancelled -> Alcotest.fail "spin job cancelled");
  Alcotest.(check bool)
    "await returned promptly, not a hang" true
    (Unix.gettimeofday () -. t0 < 10.0);
  Ocapi_batch.shutdown t;
  let s = Ocapi_batch.stats t in
  Alcotest.(check int) "timeout counted" 1 s.Ocapi_batch.bs_timed_out;
  Alcotest.(check int) "counted as failed" 1 s.Ocapi_batch.bs_failed

let test_cancel_queued_job () =
  let t = Ocapi_batch.create ~domains:1 () in
  let blocker, wait_started, release = make_blocker () in
  let hb = Ocapi_batch.submit t blocker in
  wait_started ();
  let ran = ref false in
  let h =
    Ocapi_batch.submit t
      (Ocapi_batch.Custom
         {
           cu_tag = fresh_tag "victim";
           cu_body =
             (fun ~progress:_ ->
               ran := true;
               Ocapi_obs.Json.Null);
         })
  in
  Alcotest.(check bool) "cancel accepted" true (Ocapi_batch.cancel t h);
  Alcotest.(check bool) "second cancel refused" false (Ocapi_batch.cancel t h);
  release ();
  (match Ocapi_batch.await t h with
  | Ocapi_batch.Cancelled -> ()
  | Ocapi_batch.Completed _ | Ocapi_batch.Failed _ ->
    Alcotest.fail "expected Cancelled");
  ignore (Ocapi_batch.await t hb);
  Ocapi_batch.shutdown t;
  Alcotest.(check bool) "cancelled body never ran" false !ran;
  let s = Ocapi_batch.stats t in
  Alcotest.(check int) "cancellation counted" 1 s.Ocapi_batch.bs_cancelled

let test_coalesce_duplicates () =
  Lazy.force ensure_designs;
  let t = Ocapi_batch.create ~domains:1 () in
  let blocker, wait_started, release = make_blocker () in
  let hb = Ocapi_batch.submit t blocker in
  wait_started ();
  let job =
    Ocapi_batch.Seu
      {
        seu_design = "tb-dect";
        seu_engine = "compiled";
        seu_runs = 25;
        seu_cycles = 24;
        seu_seed = 3;
      }
  in
  (* Both submitted while the worker is held: the second must attach to
     the first's queued execution, not enqueue again. *)
  let h1 = Ocapi_batch.submit t job in
  let h2 = Ocapi_batch.submit t job in
  release ();
  let o1 = Ocapi_batch.await t h1 in
  let o2 = Ocapi_batch.await t h2 in
  (* A third identical submission after completion is served from the
     completed table without touching the queue. *)
  let h3 = Ocapi_batch.submit t job in
  let o3 = Ocapi_batch.await t h3 in
  ignore (Ocapi_batch.await t hb);
  Ocapi_batch.shutdown t;
  (match (o1, o2, o3) with
  | ( Ocapi_batch.Completed { oc_json = j1; oc_dedup = d1; _ },
      Ocapi_batch.Completed { oc_json = j2; oc_dedup = d2; _ },
      Ocapi_batch.Completed { oc_json = j3; oc_dedup = d3; _ } ) ->
    Alcotest.(check bool) "first executed, not dedup" false d1;
    Alcotest.(check bool) "in-flight duplicate flagged" true d2;
    Alcotest.(check bool) "completed-table duplicate flagged" true d3;
    let s = Ocapi_obs.Json.to_string in
    Alcotest.(check string) "same report (in-flight)" (s j1) (s j2);
    Alcotest.(check string) "same report (completed)" (s j1) (s j3)
  | _ -> Alcotest.fail "expected three Completed outcomes");
  let s = Ocapi_batch.stats t in
  Alcotest.(check int) "4 submitted" 4 s.Ocapi_batch.bs_submitted;
  Alcotest.(check int) "2 executed (blocker + one SEU)" 2
    s.Ocapi_batch.bs_executed;
  Alcotest.(check int) "2 deduped" 2 s.Ocapi_batch.bs_deduped

let test_artifacts_flushed_on_shutdown () =
  Lazy.force ensure_designs;
  incr tag_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi-batch-test-%d-%d" (Unix.getpid ()) !tag_counter)
  in
  let t = Ocapi_batch.create ~domains:2 ~artifact_dir:dir () in
  let h =
    Ocapi_batch.submit t
      (Ocapi_batch.Simulate
         {
           sim_design = "tb-hcor";
           sim_engine = "interp";
           sim_cycles = 40;
           sim_seed = 1;
         })
  in
  (match Ocapi_batch.await t h with
  | Ocapi_batch.Completed _ -> ()
  | Ocapi_batch.Failed e -> Alcotest.fail (Ocapi_error.to_string e)
  | Ocapi_batch.Cancelled -> Alcotest.fail "unexpected cancellation");
  (* Shutdown must block until the async writer has the file on disk. *)
  Ocapi_batch.shutdown t;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () ->
      let path =
        match Ocapi_batch.artifact_path t h with
        | Some p -> p
        | None -> Alcotest.fail "no artifact path"
      in
      Alcotest.(check bool) "artifact on disk" true (Sys.file_exists path);
      let ic = open_in_bin path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Ocapi_obs.Json.of_string content with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("artifact is not valid JSON: " ^ e));
      (* The artifact is the canonical report: byte-identical to calling
         the library directly. *)
      let expect =
        Ocapi_obs.Json.to_string
          (Flow.simulate_result_json ~engine:"interp" ~cycles:40
             (Flow.simulate ~engine:"interp" ~seed:1 (hcor_design ())
                ~cycles:40))
        ^ "\n"
      in
      Alcotest.(check string) "artifact = direct library call" expect content;
      let s = Ocapi_batch.stats t in
      Alcotest.(check int) "one artifact recorded" 1
        s.Ocapi_batch.bs_artifacts_written)

(* The structured event log: a dedup pair must produce one
   job_submitted + one job_deduped sharing a correlation id, every
   execution a job_started/job_completed with the same id, and a
   Simulate execution the engine-level run_started/run_finished pair
   tagged with it too. *)
let test_event_log_lifecycle () =
  Lazy.force ensure_designs;
  Ocapi_obs.Events.clear ();
  Ocapi_obs.Events.set_enabled true;
  let t = Ocapi_batch.create ~domains:1 () in
  let job =
    Ocapi_batch.Simulate
      { sim_design = "tb-hcor"; sim_engine = "interp"; sim_cycles = 16;
        sim_seed = 42 }
  in
  let h1 = Ocapi_batch.submit ~label:"ev-sim" t job in
  let h2 = Ocapi_batch.submit ~label:"ev-sim-dup" t job in
  ignore (Ocapi_batch.await t h1);
  ignore (Ocapi_batch.await t h2);
  Ocapi_batch.shutdown t;
  let events = Ocapi_obs.Events.events () in
  Ocapi_obs.Events.set_enabled false;
  Ocapi_obs.Events.clear ();
  let kinds k =
    List.filter (fun e -> e.Ocapi_obs.Events.e_kind = k) events
  in
  let corr_of k =
    match kinds k with
    | [ e ] -> e.Ocapi_obs.Events.e_corr
    | l ->
      Alcotest.fail (Printf.sprintf "%d %s events, expected 1" (List.length l) k)
  in
  let submitted = corr_of "job_submitted" in
  Alcotest.(check bool) "corr is a 12-char digest prefix" true
    (String.length submitted = 12);
  Alcotest.(check string) "dedup shares the corr" submitted
    (corr_of "job_deduped");
  Alcotest.(check string) "started shares the corr" submitted
    (corr_of "job_started");
  Alcotest.(check string) "completed shares the corr" submitted
    (corr_of "job_completed");
  Alcotest.(check string) "engine run_started shares the corr" submitted
    (corr_of "run_started");
  Alcotest.(check string) "engine run_finished shares the corr" submitted
    (corr_of "run_finished")

let suite =
  [
    Alcotest.test_case "FIFO within priority classes" `Quick test_priority_fifo;
    Alcotest.test_case "event log lifecycle and correlation" `Quick
      test_event_log_lifecycle;
    Alcotest.test_case "timeout is a structured failure" `Quick
      test_timeout_is_structured;
    Alcotest.test_case "queued job cancellation" `Quick test_cancel_queued_job;
    Alcotest.test_case "duplicate submissions coalesce" `Quick
      test_coalesce_duplicates;
    Alcotest.test_case "artifacts flushed on shutdown" `Quick
      test_artifacts_flushed_on_shutdown;
  ]
