(* Tests for the HDL generators: VHDL entities, test benches, Verilog. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let small_system () =
  let acc = Signal.Reg.create clk "hdl_acc" s8 in
  let hot = Signal.Reg.create clk "hdl_hot" Fixed.bit_format in
  let step =
    Sfg.build "hdl_step" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        let sum = Signal.(x +: reg_q acc) in
        Sfg.Builder.output b "y" (Signal.resize ~overflow:Fixed.Saturate s8 sum);
        Sfg.Builder.assign_resized b acc sum;
        Sfg.Builder.assign b hot Signal.(reg_q acc >: consti s8 50))
  in
  let cool =
    Sfg.build "hdl_cool" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "y" (Signal.resize s8 x);
        Sfg.Builder.assign b acc (Signal.consti s8 0);
        Sfg.Builder.assign b hot Signal.gnd)
  in
  let fsm = Fsm.create "hdl_ctl" in
  let run = Fsm.initial fsm "running" in
  let cooldown = Fsm.state fsm "cooling" in
  Fsm.(run |-- cnd (Signal.reg_q hot) |+ cool |-> cooldown);
  Fsm.(run |-- always |+ step |-> run);
  Fsm.(cooldown |-- always |+ step |-> run);
  let sys = Cycle_system.create "hdl_demo" in
  let c = Cycle_system.add_timed sys "worker" fsm in
  let stim = Cycle_system.add_input sys "x_in" s8 (fun cyc -> Some (Fixed.of_int s8 (cyc mod 9))) in
  let p = Cycle_system.add_output sys "y_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (c, "x") ]);
  ignore (Cycle_system.connect sys (c, "y") [ (p, "in") ]);
  sys

let test_vhdl_structure () =
  let sys = small_system () in
  let files = Vhdl.of_system sys in
  Alcotest.(check int) "two files" 2 (List.length files);
  let comp = List.assoc "worker.vhd" files in
  Alcotest.(check bool) "entity" true (contains comp "entity worker is");
  Alcotest.(check bool) "numeric_std" true (contains comp "use ieee.numeric_std.all;");
  Alcotest.(check bool) "state type" true
    (contains comp "type state_t is (st_running, st_cooling);");
  Alcotest.(check bool) "comb process" true (contains comp "comb : process");
  Alcotest.(check bool) "seq process" true (contains comp "seq : process (clk)");
  Alcotest.(check bool) "register declared" true
    (contains comp "signal r_hdl_acc, r_hdl_acc_next : signed(7 downto 0);");
  Alcotest.(check bool) "input port" true (contains comp "p_x : in signed(7 downto 0)");
  Alcotest.(check bool) "output port" true (contains comp "o_y : out signed(7 downto 0)");
  Alcotest.(check bool) "reset behaviour" true (contains comp "if rst = '1' then");
  let top = List.assoc "hdl_demo_top.vhd" files in
  Alcotest.(check bool) "top entity" true (contains top "entity hdl_demo is");
  Alcotest.(check bool) "instance" true (contains top "u_worker : entity work.worker");
  Alcotest.(check bool) "line count sane" true (Vhdl.line_count files > 60)

let test_vhdl_ram_entity () =
  let sys = small_system () in
  ignore
    (Cycle_system.add_untimed sys
       (Ram_cell.kernel ~name:"hdl_test_ram" ~words:8 ~data_fmt:s8
          ~addr_fmt:(Fixed.unsigned ~width:3 ~frac:0)));
  let files = Vhdl.of_system sys in
  Alcotest.(check bool) "ram entity emitted" true
    (List.mem_assoc "ocapi_ram.vhd" files)

let test_testbench () =
  let sys = small_system () in
  let vectors = Testbench.record sys ~cycles:10 in
  Alcotest.(check int) "cycles" 10 vectors.Testbench.tb_cycles;
  Alcotest.(check int) "inputs recorded" 10 (List.length vectors.Testbench.tb_inputs);
  Alcotest.(check int) "outputs recorded" 10 (List.length vectors.Testbench.tb_outputs);
  let tb = Testbench.vhdl sys vectors in
  Alcotest.(check bool) "tb entity" true (contains tb "entity tb_hdl_demo is");
  Alcotest.(check bool) "dut instance" true (contains tb "dut : entity work.hdl_demo");
  Alcotest.(check bool) "clock gen" true (contains tb "clk <= not clk after 5 ns;");
  Alcotest.(check bool) "has assertions" true (contains tb "assert o_y_out =");
  Alcotest.(check bool) "completion report" true
    (contains tb "report \"test bench completed: 10 cycles\"")

let test_verilog_netlist () =
  let sys = small_system () in
  let nl, _ = Synthesize.synthesize sys in
  let v = Verilog.of_netlist nl in
  Alcotest.(check bool) "module" true (contains v "module hdl_demo (");
  Alcotest.(check bool) "input" true (contains v "input wire [7:0] x_in");
  Alcotest.(check bool) "output" true (contains v "output wire [7:0] y_out");
  Alcotest.(check bool) "ff always" true (contains v "always @(posedge clk)");
  Alcotest.(check bool) "endmodule" true (contains v "endmodule");
  Alcotest.(check bool) "line count" true (Verilog.line_count v > 100)

let test_flow_emit_files () =
  let sys = small_system () in
  let dir = Filename.temp_file "ocapi_hdl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths = Flow.emit_vhdl sys ~dir in
  Alcotest.(check int) "files written" 2 (List.length paths);
  List.iter (fun p -> Alcotest.(check bool) p true (Sys.file_exists p)) paths;
  let tb = Flow.emit_testbench sys ~dir ~cycles:5 in
  Alcotest.(check bool) "tb written" true (Sys.file_exists tb);
  let _, _, netlist_path = Flow.synthesize_to_verilog sys ~dir in
  Alcotest.(check bool) "netlist written" true (Sys.file_exists netlist_path);
  let sim_path = Flow.emit_ocaml_simulator sys ~dir ~cycles:5 in
  Alcotest.(check bool) "simulator written" true (Sys.file_exists sim_path)

let suite =
  [
    Alcotest.test_case "vhdl structure" `Quick test_vhdl_structure;
    Alcotest.test_case "vhdl ram entity" `Quick test_vhdl_ram_entity;
    Alcotest.test_case "testbench generation" `Quick test_testbench;
    Alcotest.test_case "verilog netlist" `Quick test_verilog_netlist;
    Alcotest.test_case "flow file emission" `Quick test_flow_emit_files;
  ]

let test_vcd () =
  let sys = small_system () in
  let vcd = Vcd.record sys ~cycles:12 in
  Alcotest.(check bool) "header" true (contains vcd "$enddefinitions $end");
  Alcotest.(check bool) "var decl" true (contains vcd "$var wire 8");
  Alcotest.(check bool) "time marks" true (contains vcd "#11");
  Alcotest.(check bool) "binary values" true (contains vcd "b0000");
  (* both nets appear as $var declarations *)
  let count_vars s =
    let re = "$var" in
    let rec go i acc =
      if i + 4 > String.length s then acc
      else if String.sub s i 4 = re then go (i + 4) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two nets" 2 (count_vars vcd)

let test_fsm_dot () =
  let sys = small_system () in
  ignore sys;
  let eof = Signal.Reg.create clk "dot_eof" Fixed.bit_format in
  let f = Fsm.create "dot_f" in
  let s0 = Fsm.initial f "s0" and s1 = Fsm.state f "s1" in
  Fsm.(s0 |-- always |+ Sfg.nop "sfg1" |-> s1);
  Fsm.(s1 |-- cnd (Signal.reg_q eof) |+ Sfg.nop "sfg2" |-> s0);
  let dot = Fsm.to_dot f in
  Alcotest.(check bool) "digraph" true (contains dot "digraph \"dot_f\"");
  Alcotest.(check bool) "initial double circle" true
    (contains dot "\"s0\" [shape=doublecircle];");
  Alcotest.(check bool) "edge with action" true (contains dot "sfg1");
  Alcotest.(check bool) "guard label" true (contains dot "dot_eof")

let suite =
  suite
  @ [
      Alcotest.test_case "vcd dump" `Quick test_vcd;
      Alcotest.test_case "fsm dot export" `Quick test_fsm_dot;
    ]

let test_vhdl_netlist () =
  let sys = small_system () in
  let nl, _ = Synthesize.synthesize sys in
  let v = Vhdl.of_netlist nl in
  Alcotest.(check bool) "entity" true (contains v "entity hdl_demo_netlist is");
  Alcotest.(check bool) "gates" true (contains v " and ");
  Alcotest.(check bool) "register process" true (contains v "registers : process (clk)");
  Alcotest.(check bool) "ends" true (contains v "end architecture structural;")

let suite = suite @ [ Alcotest.test_case "vhdl netlist view" `Quick test_vhdl_netlist ]
