(* Tests for the reference designs: HCOR, the DECT transceiver, the
   architecture-migration chain and the RAM cell. *)

let hist sys p =
  match Cycle_system.find_component sys p with
  | Some c -> Cycle_system.output_history sys c
  | None -> []

(* --- HCOR ----------------------------------------------------------------- *)

let hcor_setup ?(snr = 25.0) ?(seed = 7) () =
  let bits = Dect_stimuli.burst ~seed () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~taps:[| 1.0; 0.15; -0.05 |] ~snr_db:snr ~seed tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  let h = Hcor.create ~stimulus:(Hcor.sample_stimulus samples) () in
  (h, bits, rx, Array.length samples)

let test_hcor_finds_sync () =
  let h, _, rx, n = hcor_setup () in
  let sys = h.Hcor.system in
  Cycle_system.run sys (n + 10);
  let locked = hist sys "locked" in
  (match List.find_opt (fun (_, v) -> Fixed.is_true v) locked with
  | Some (c, _) ->
    (* The golden sync ends at bit 31; lock is registered one cycle later. *)
    let golden = Dect_stimuli.find_sync (Dect_stimuli.slice rx) ~threshold:14 in
    (match golden with
    | Some g -> Alcotest.(check int) "lock = golden + 1" (g + 1) c
    | None -> Alcotest.fail "golden did not find sync")
  | None -> Alcotest.fail "HCOR never locked")

let test_hcor_payload_bits () =
  let h, bits, _, n = hcor_setup () in
  let sys = h.Hcor.system in
  Cycle_system.run sys (n + 10);
  let locked = Array.make (n + 10) false in
  List.iter
    (fun (c, v) -> if c < n + 10 then locked.(c) <- Fixed.is_true v)
    (hist sys "locked");
  let emitted =
    List.filter (fun (c, _) -> c < n + 10 && locked.(c)) (hist sys "bit_out")
  in
  let payload = Array.sub bits 32 388 in
  Alcotest.(check int) "payload length" 388 (List.length emitted);
  List.iteri
    (fun i (_, v) ->
      if Fixed.is_true v <> payload.(i) then
        Alcotest.failf "payload bit %d wrong" i)
    emitted

let test_hcor_relocks () =
  (* After the payload, HCOR returns to search and locks a second burst. *)
  let bits = Dect_stimuli.burst ~seed:5 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~taps:[| 1.0 |] ~snr_db:40.0 ~seed:5 tx in
  let one = Array.map (fun x -> x /. 2.0) rx in
  let stream = Array.append one one in
  let samples = Dect_stimuli.quantize Hcor.sample_format stream in
  let h = Hcor.create ~payload_len:388 ~stimulus:(Hcor.sample_stimulus samples) () in
  let sys = h.Hcor.system in
  Cycle_system.run sys (Array.length stream + 10);
  let locks =
    let rec edges prev = function
      | [] -> []
      | (c, v) :: rest ->
        let now = Fixed.is_true v in
        (if now && not prev then [ c ] else []) @ edges now rest
    in
    edges false (hist sys "locked")
  in
  Alcotest.(check int) "two lock events" 2 (List.length locks)

let test_hcor_no_false_lock_on_noise () =
  (* A constant positive level slices to all-ones; the sync word has
     eight zeros, so the correlation is pinned at 8 < threshold. *)
  let samples =
    Array.make 300 (Fixed.of_float Hcor.sample_format 0.1)
  in
  let h = Hcor.create ~stimulus:(Hcor.sample_stimulus samples) () in
  let sys = h.Hcor.system in
  Cycle_system.run sys 300;
  Alcotest.(check bool) "never locks" true
    (List.for_all (fun (_, v) -> not (Fixed.is_true v)) (hist sys "locked"))

let test_hcor_parameter_validation () =
  (match Hcor.create ~threshold:0 ~stimulus:(fun _ -> None) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold 0 accepted");
  match Hcor.create ~payload_len:0 ~stimulus:(fun _ -> None) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "payload 0 accepted"

(* --- stimuli substrate ----------------------------------------------------- *)

let test_stimuli_sync_word () =
  Alcotest.(check int) "16 bits" 16 (Array.length Dect_stimuli.sync_word);
  (* 0xE98A MSB first *)
  let v =
    Array.fold_left (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0
      Dect_stimuli.sync_word
  in
  Alcotest.(check int) "0xE98A" 0xE98A v

let test_stimuli_correlate () =
  let bits = Array.append Dect_stimuli.preamble Dect_stimuli.sync_word in
  let scores = Dect_stimuli.correlate bits Dect_stimuli.sync_word in
  Alcotest.(check int) "perfect at the end" 16 scores.(31);
  Alcotest.(check bool) "find_sync" true
    (Dect_stimuli.find_sync bits ~threshold:16 = Some 31)

let test_stimuli_crc () =
  (* CRC-16/XMODEM of ASCII "123456789" (bit-serial MSB first) = 0x31C3. *)
  let bytes = "123456789" in
  let bits =
    Array.init (8 * String.length bytes) (fun i ->
        let byte = Char.code bytes.[i / 8] in
        byte land (0x80 lsr (i mod 8)) <> 0)
  in
  Alcotest.(check int) "xmodem check value" 0x31C3 (Dect_stimuli.crc16 bits)

let test_stimuli_channel_fir () =
  let x = [| 1.0; 0.0; 0.0; -1.0 |] in
  let y = Dect_stimuli.fir [| 0.5; 0.25 |] x in
  Alcotest.(check (float 1e-9)) "y0" 0.5 y.(0);
  Alcotest.(check (float 1e-9)) "y1" 0.25 y.(1);
  Alcotest.(check (float 1e-9)) "y3" (-0.5) y.(3);
  (* channel with identity taps and huge SNR is near-identity *)
  let c = Dect_stimuli.channel ~taps:[| 1.0 |] ~snr_db:80.0 ~seed:3 x in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-2)) "identity" x.(i) v)
    c

(* --- RAM cell --------------------------------------------------------------- *)

let test_ram_cell_semantics () =
  let s8 = Fixed.signed ~width:8 ~frac:0 in
  let k =
    Ram_cell.kernel ~name:"test_ram_sem" ~words:4 ~data_fmt:s8
      ~addr_fmt:(Fixed.unsigned ~width:2 ~frac:0)
  in
  let fire addr wdata we =
    let consumed =
      [
        ("addr", [ Fixed.of_int (Fixed.unsigned ~width:2 ~frac:0) addr ]);
        ("wdata", [ Fixed.of_int s8 wdata ]);
        ("we", [ Fixed.of_bool we ]);
      ]
    in
    let produced = k.Dataflow.Kernel.k_behavior consumed in
    k.Dataflow.Kernel.k_commit ();
    match produced with
    | [ ("rdata", [ v ]) ] -> Fixed.to_int v
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check int) "initial zero" 0 (fire 1 42 true);
  Alcotest.(check int) "write visible next" 42 (fire 1 0 false);
  Alcotest.(check int) "other word untouched" 0 (fire 2 0 false);
  Alcotest.(check (option int)) "peek" (Some 42)
    (Option.map Fixed.to_int (Ram_cell.peek ~name:"test_ram_sem" 1));
  k.Dataflow.Kernel.k_reset ();
  Alcotest.(check int) "reset" 0 (fire 1 0 false)

(* --- DECT transceiver -------------------------------------------------------- *)

let dect_setup ?(symbols = 40) ?(seed = 3) () =
  let bits = Dect_stimuli.burst ~seed () in
  let tx = Dect_stimuli.transmit (Array.sub bits 0 symbols) in
  let rx = Dect_stimuli.channel ~taps:[| 1.0; 0.45; -0.2 |] ~snr_db:30.0 ~seed tx in
  let cycles = (symbols + 2) * Dect_transceiver.loop_length in
  let samples = Array.make cycles (Fixed.zero Dect_transceiver.sample_format) in
  Array.iteri
    (fun n v ->
      let c = (Dect_transceiver.loop_length * n) + 1 in
      if c < cycles then
        samples.(c) <-
          Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
            (v /. 2.0))
    rx;
  let d =
    Dect_transceiver.create
      ~stimulus:(Dect_transceiver.sample_stimulus samples)
      ()
  in
  (d, samples, symbols, cycles)

let test_dect_structure () =
  let d, _, _, _ = dect_setup ~symbols:2 () in
  Alcotest.(check int) "22 datapaths" 22
    (List.length d.Dect_transceiver.instruction_counts);
  Alcotest.(check int) "7 RAM cells" 7 (List.length d.Dect_transceiver.ram_names);
  Alcotest.(check int) "program length" 320 d.Dect_transceiver.program_length;
  let counts = List.map snd d.Dect_transceiver.instruction_counts in
  Alcotest.(check int) "min instructions" 2 (List.fold_left min 99 counts);
  Alcotest.(check int) "max instructions" 57 (List.fold_left max 0 counts);
  (* 22 datapaths + VLIW controller + PC controller timed; 7 untimed *)
  let sys = d.Dect_transceiver.system in
  Alcotest.(check int) "24 timed" 24 (List.length (Cycle_system.timed_components sys));
  Alcotest.(check int) "7 untimed" 7
    (List.length (Cycle_system.untimed_components sys));
  Alcotest.(check bool) "interconnect clean" true
    (Cycle_system.check sys = [])

let test_dect_golden_soft_bits_crc () =
  let d, samples, symbols, cycles = dect_setup () in
  let sys = d.Dect_transceiver.system in
  Cycle_system.run sys cycles;
  let golden = Dect_transceiver.golden_reference samples ~symbols in
  let ll = Dect_transceiver.loop_length in
  let soft = hist sys "soft_out" and bits = hist sys "bit_out" in
  let crc = hist sys "crc_probe" in
  for n = 0 to symbols - 3 do
    (match List.assoc_opt ((ll * (n + 1)) + 4) soft with
    | Some v ->
      if not (Fixed.equal v golden.Dect_transceiver.g_soft.(n)) then
        Alcotest.failf "soft[%d] mismatch" n
    | None -> Alcotest.failf "soft[%d] missing" n);
    (match List.assoc_opt ((ll * (n + 1)) + 5) bits with
    | Some v ->
      if Fixed.is_true v <> golden.Dect_transceiver.g_bits.(n) then
        Alcotest.failf "bit[%d] mismatch" n
    | None -> Alcotest.failf "bit[%d] missing" n);
    match List.assoc_opt ((ll * (n + 1)) + 7) crc with
    | Some v ->
      if Fixed.to_int v <> golden.Dect_transceiver.g_crc.(n) then
        Alcotest.failf "crc[%d] mismatch" n
    | None -> Alcotest.failf "crc[%d] missing" n
  done

let test_dect_hold_is_exact_delay () =
  let const_stim _ =
    Some (Fixed.of_float Dect_transceiver.sample_format 0.4)
  in
  let d1 = Dect_transceiver.create ~stimulus:const_stim () in
  let d2 =
    Dect_transceiver.create
      ~hold:(fun c -> c >= 50 && c < 57)
      ~stimulus:const_stim ()
  in
  Cycle_system.run d1.Dect_transceiver.system 250;
  Cycle_system.run d2.Dect_transceiver.system 257;
  List.iter
    (fun probe ->
      let h1 = hist d1.Dect_transceiver.system probe in
      let h2 = hist d2.Dect_transceiver.system probe in
      for c = 100 to 240 do
        let v1 = List.assoc_opt c h1 and v2 = List.assoc_opt (c + 7) h2 in
        match v1, v2 with
        | Some a, Some b ->
          if not (Fixed.equal a b) then
            Alcotest.failf "%s differs at cycle %d" probe c
        | _ -> Alcotest.failf "%s missing token at %d" probe c
      done)
    [ "crc_probe"; "soft_out"; "bit_out"; "frame_probe"; "adapt_probe" ]

let test_dect_pc_freezes_during_hold () =
  let d =
    Dect_transceiver.create
      ~hold:(fun c -> c >= 30 && c < 40)
      ~stimulus:(fun _ -> Some (Fixed.zero Dect_transceiver.sample_format))
      ()
  in
  let sys = d.Dect_transceiver.system in
  Cycle_system.run sys 60;
  let pc = hist sys "pc_probe" in
  let v c = Fixed.to_int (List.assoc c pc) in
  (* hold_request registered: pc counts cycles before the hold, freezes
     shortly after cycle 30, and afterwards lags by the 10-cycle hold. *)
  Alcotest.(check int) "pc counts before hold" 25 (v 25);
  Alcotest.(check bool) "pc frozen" true (v 33 = v 34 && v 34 = v 40);
  Alcotest.(check int) "pc lags by the hold length" 45 (v 55)

let test_dect_engines_agree () =
  let d, _, _, _ = dect_setup ~symbols:8 () in
  Alcotest.(check (list string)) "all engines" []
    (Flow.engines_agree d.Dect_transceiver.system ~cycles:150)

let test_dect_netlist_verify () =
  let d, _, _, _ = dect_setup ~symbols:6 () in
  let r =
    Flow.verify_netlist ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      d.Dect_transceiver.system ~cycles:100
  in
  Alcotest.(check bool) "vectors checked" true (r.Synthesize.vectors_checked > 1000);
  Alcotest.(check int) "no mismatches" 0 (List.length r.Synthesize.mismatches)

let test_dect_gate_count_scale () =
  let d, _, _, _ = dect_setup ~symbols:2 () in
  let _, rep =
    Synthesize.synthesize ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      d.Dect_transceiver.system
  in
  let g = rep.Synthesize.total.Netlist.gate_equivalents in
  (* The paper reports 75 Kgates; the reproduction must be the same
     order of magnitude. *)
  Alcotest.(check bool) "tens of kilogates" true (g > 20_000 && g < 150_000)

(* --- architecture migration -------------------------------------------------- *)

let test_arch_migration_equivalence () =
  let samples =
    Array.init 80 (fun i ->
        Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
          (sin (float i *. 1.1) /. 2.0))
  in
  let chain = Arch_migration.build_chain () in
  let r1, st1 = Arch_migration.run_dataflow chain samples in
  let r2, st2 = Arch_migration.run_central chain samples in
  Alcotest.(check int) "dataflow emitted all" 80
    (List.length r1.Arch_migration.r_bits);
  Alcotest.(check bool) "bits identical" true
    (r1.Arch_migration.r_bits = r2.Arch_migration.r_bits);
  Alcotest.(check bool) "soft identical" true
    (List.for_all2 Fixed.equal r1.Arch_migration.r_soft r2.Arch_migration.r_soft);
  Alcotest.(check bool) "dataflow not deadlocked" false st1.Dataflow.deadlocked;
  Alcotest.(check int) "central ran all cycles" 80 st2.Cycle_system.cycles


let test_dect_hold_under_compiled () =
  (* The fig 2 hold machinery survives compilation: the compiled engine
     and the interpreted scheduler agree on a run with holds. *)
  let d =
    Dect_transceiver.create
      ~hold:(fun c -> (c >= 45 && c < 52) || (c >= 130 && c < 133))
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate
             Dect_transceiver.sample_format
             (cos (float c /. 2.0) /. 2.5)))
      ()
  in
  Alcotest.(check (list string)) "agree with holds" []
    (Flow.engines_agree d.Dect_transceiver.system ~cycles:200)

let test_dect_optimized_netlist () =
  let d, _, _, _ = dect_setup ~symbols:5 () in
  let r =
    Synthesize.verify ~optimize:true
      ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      d.Dect_transceiver.system ~cycles:90
  in
  Alcotest.(check int) "optimized netlist verifies" 0
    (List.length r.Synthesize.mismatches)

let test_dect_one_hot () =
  let d, _, _, _ = dect_setup ~symbols:4 () in
  let options =
    { Synthesize.default_options with
      Synthesize.state_encoding = Synthesize.One_hot }
  in
  let r =
    Synthesize.verify ~options
      ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      d.Dect_transceiver.system ~cycles:70
  in
  Alcotest.(check int) "one-hot DECT verifies" 0
    (List.length r.Synthesize.mismatches)

let test_system_dot () =
  let d, _, _, _ = dect_setup ~symbols:2 () in
  let dot = Cycle_system.to_dot d.Dect_transceiver.system in
  let contains needle =
    let nh = String.length dot and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub dot i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph \"dect\"");
  Alcotest.(check bool) "vliw box" true (contains "\"vliw_ctl\" [shape=box]");
  Alcotest.(check bool) "ram dashed" true (contains "style=dashed");
  Alcotest.(check bool) "instruction bus edge" true (contains "label=\"bank0\"")


let test_dect_golden_under_compiled () =
  (* The compiled engine reproduces the golden equalizer stream too. *)
  let d, samples, symbols, cycles = dect_setup ~symbols:20 ~seed:9 () in
  let sys = d.Dect_transceiver.system in
  Cycle_system.reset sys;
  let prog = Compiled_sim.compile sys in
  Compiled_sim.run prog cycles;
  let golden = Dect_transceiver.golden_reference samples ~symbols in
  let ll = Dect_transceiver.loop_length in
  let soft = Compiled_sim.output_history prog "soft_out" in
  for n = 0 to symbols - 3 do
    match List.assoc_opt ((ll * (n + 1)) + 4) soft with
    | Some v ->
      if not (Fixed.equal v golden.Dect_transceiver.g_soft.(n)) then
        Alcotest.failf "compiled soft[%d] mismatch" n
    | None -> Alcotest.failf "compiled soft[%d] missing" n
  done;
  Cycle_system.reset sys

let test_dect_two_bursts_with_hold () =
  (* Two consecutive bursts with a hold between them: the second burst
     decodes exactly as the golden model predicts once the hold shift is
     accounted for. *)
  let symbols = 36 in
  let ll = Dect_transceiver.loop_length in
  let bits = Dect_stimuli.burst ~seed:31 () in
  let tx = Dect_stimuli.transmit (Array.sub bits 0 symbols) in
  let rx = Dect_stimuli.channel ~taps:[| 1.0; 0.45; -0.2 |] ~snr_db:35.0 ~seed:31 tx in
  let hold_start = (ll * 12) + 7 and hold_len = 5 in
  let cycles = ((symbols + 2) * ll) + hold_len in
  (* The sample stream must freeze with the chip during the hold. *)
  let base = Array.make cycles (Fixed.zero Dect_transceiver.sample_format) in
  Array.iteri
    (fun n v ->
      let c = (ll * n) + 1 in
      let c = if c > hold_start then c + hold_len else c in
      if c < cycles then
        base.(c) <-
          Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
            (v /. 2.0))
    rx;
  let d =
    Dect_transceiver.create
      ~hold:(fun c -> c >= hold_start && c < hold_start + hold_len)
      ~stimulus:(Dect_transceiver.sample_stimulus base)
      ()
  in
  let sys = d.Dect_transceiver.system in
  Cycle_system.run sys cycles;
  (* Golden over the unshifted stream. *)
  let unshifted = Array.make cycles (Fixed.zero Dect_transceiver.sample_format) in
  Array.iteri
    (fun n v ->
      let c = (ll * n) + 1 in
      if c < cycles then
        unshifted.(c) <-
          Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
            (v /. 2.0))
    rx;
  let golden = Dect_transceiver.golden_reference unshifted ~symbols in
  let soft = hist sys "soft_out" in
  let check n =
    let c0 = (ll * (n + 1)) + 4 in
    let c = if c0 > hold_start then c0 + hold_len else c0 in
    match List.assoc_opt c soft with
    | Some v ->
      if not (Fixed.equal v golden.Dect_transceiver.g_soft.(n)) then
        Alcotest.failf "soft[%d] after hold mismatch" n
    | None -> Alcotest.failf "soft[%d] missing" n
  in
  (* Symbols comfortably before and after the hold. *)
  List.iter check [ 2; 5; 8; 20; 25; 30 ]


let test_dect_scrambler_golden () =
  (* The descrambler LFSR (x^7 + x^4 + 1, seed 0x5B, re-seeded at every
     program pass) replicated bit-exactly in software. *)
  let d, samples, symbols, cycles = dect_setup ~symbols:30 ~seed:12 () in
  let sys = d.Dect_transceiver.system in
  Cycle_system.run sys cycles;
  let golden = Dect_transceiver.golden_reference samples ~symbols in
  let ll = Dect_transceiver.loop_length in
  let sbits = hist sys "scram_out" in
  let lfsr = ref 0x5B in
  let step_lfsr () =
    let b6 = (!lfsr lsr 6) land 1 and b3 = (!lfsr lsr 3) land 1 in
    lfsr := ((!lfsr lsl 1) land 0x7F) lor (b6 lxor b3)
  in
  (* Pipeline fill: loop 0's STEP consumes the slice of the still-zero
     sum register, advancing the LFSR once before bit[0]. *)
  step_lfsr ();
  for n = 0 to symbols - 3 do
    (* INIT lands before the STEP that processes bit (16p - 1). *)
    if (n + 1) mod 16 = 0 then lfsr := 0x5B;
    let b6 = (!lfsr lsr 6) land 1 in
    let expected = (if golden.Dect_transceiver.g_bits.(n) then 1 else 0) lxor b6 in
    step_lfsr ();
    (* STEP of loop n+1 processes bit[n]; visible one cycle later. *)
    match List.assoc_opt ((ll * (n + 1)) + 8) sbits with
    | Some v ->
      if Fixed.to_int v <> expected then
        Alcotest.failf "scrambler bit %d: got %d expected %d" n (Fixed.to_int v)
          expected
    | None -> Alcotest.failf "scrambler bit %d missing" n
  done

let suite =
  [
    Alcotest.test_case "HCOR finds sync at golden position" `Quick
      test_hcor_finds_sync;
    Alcotest.test_case "HCOR recovers the payload" `Quick test_hcor_payload_bits;
    Alcotest.test_case "HCOR re-locks on a second burst" `Quick test_hcor_relocks;
    Alcotest.test_case "HCOR rejects noise" `Quick test_hcor_no_false_lock_on_noise;
    Alcotest.test_case "HCOR parameter validation" `Quick
      test_hcor_parameter_validation;
    Alcotest.test_case "stimuli: sync word" `Quick test_stimuli_sync_word;
    Alcotest.test_case "stimuli: correlation" `Quick test_stimuli_correlate;
    Alcotest.test_case "stimuli: crc16 check value" `Quick test_stimuli_crc;
    Alcotest.test_case "stimuli: channel and fir" `Quick test_stimuli_channel_fir;
    Alcotest.test_case "RAM cell semantics" `Quick test_ram_cell_semantics;
    Alcotest.test_case "DECT structure (fig 5)" `Quick test_dect_structure;
    Alcotest.test_case "DECT matches golden (soft/bits/crc)" `Quick
      test_dect_golden_soft_bits_crc;
    Alcotest.test_case "DECT hold = exact delay (fig 2)" `Quick
      test_dect_hold_is_exact_delay;
    Alcotest.test_case "DECT pc freezes during hold" `Quick
      test_dect_pc_freezes_during_hold;
    Alcotest.test_case "DECT engines agree" `Slow test_dect_engines_agree;
    Alcotest.test_case "DECT netlist verifies" `Slow test_dect_netlist_verify;
    Alcotest.test_case "DECT gate-count scale" `Slow test_dect_gate_count_scale;
    Alcotest.test_case "architecture migration" `Quick
      test_arch_migration_equivalence;
    Alcotest.test_case "DECT hold under compiled engine" `Slow
      test_dect_hold_under_compiled;
    Alcotest.test_case "DECT optimized netlist verifies" `Slow
      test_dect_optimized_netlist;
    Alcotest.test_case "DECT one-hot controller verifies" `Slow
      test_dect_one_hot;
    Alcotest.test_case "system dot export" `Quick test_system_dot;
    Alcotest.test_case "DECT golden under compiled engine" `Slow
      test_dect_golden_under_compiled;
    Alcotest.test_case "DECT two bursts around a hold" `Slow
      test_dect_two_bursts_with_hold;
    Alcotest.test_case "DECT scrambler golden" `Quick test_dect_scrambler_golden;
  ]
