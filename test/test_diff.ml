(* Tests for the differential fuzzing harness (Ocapi_diff): generator
   determinism, genome serialization, the reproducer corpus, the
   injected-bug self-test and the shrinker's invariants. *)

module Diff = Ocapi_diff
module Spec = Ocapi_diff.Spec
module Corpus = Ocapi_diff.Corpus

let json_str j = Ocapi_obs.Json.to_string j

(* --- generator determinism ------------------------------------------------- *)

(* The genome is a pure function of (size, seed): same arguments, same
   spec, same serialized form, and two independent builds of the spec
   elaborate to the same design digest. *)
let test_generate_deterministic () =
  List.iter
    (fun (size, seed) ->
      let a = Spec.generate ~size ~seed () in
      let b = Spec.generate ~size ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "genome json (size %d, seed %d)" size seed)
        (json_str (Spec.to_json a))
        (json_str (Spec.to_json b));
      Alcotest.(check string)
        (Printf.sprintf "design digest (size %d, seed %d)" size seed)
        (Spec.digest a) (Spec.digest b);
      Alcotest.(check string)
        (Printf.sprintf "rebuild digest (size %d, seed %d)" size seed)
        (Cycle_system.digest (Spec.build a))
        (Cycle_system.digest (Spec.build b)))
    [ (1, 1); (2, 7); (3, 42); (4, 99) ]

(* Different seeds explore different designs (the generator is not
   collapsing the seed space). *)
let test_generate_seeds_differ () =
  let digests =
    List.map (fun seed -> Spec.digest (Spec.generate ~seed ())) [ 1; 2; 3; 4; 5 ]
  in
  let distinct = List.sort_uniq compare digests in
  Alcotest.(check bool) "5 seeds give >1 distinct design" true
    (List.length distinct > 1)

(* --- genome serialization -------------------------------------------------- *)

let test_spec_json_roundtrip () =
  List.iter
    (fun (size, seed) ->
      let s = Spec.generate ~size ~seed () in
      match Spec.of_json (Spec.to_json s) with
      | Error e -> Alcotest.failf "of_json failed (seed %d): %s" seed e
      | Ok s' ->
        Alcotest.(check string)
          (Printf.sprintf "roundtrip json (size %d, seed %d)" size seed)
          (json_str (Spec.to_json s))
          (json_str (Spec.to_json s'));
        Alcotest.(check string)
          (Printf.sprintf "roundtrip digest (size %d, seed %d)" size seed)
          (Spec.digest s) (Spec.digest s'))
    [ (1, 3); (2, 11); (3, 27); (4, 63) ]

(* --- differential check on clean designs ----------------------------------- *)

(* A handful of generated designs through the full engine roster: the
   stack must agree (this is the same property `ocapi fuzz` checks at
   campaign scale). *)
let test_check_spec_clean () =
  List.iter
    (fun seed ->
      let s = Spec.generate ~seed () in
      match Diff.check_spec s with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "seed %d diverged on %s: %s" seed f.Diff.f_check
          (Ocapi_error.to_string f.Diff.f_error))
    [ 1; 2; 3 ]

(* --- corpus ---------------------------------------------------------------- *)

let mk_entry seed =
  let spec = Spec.generate ~seed () in
  {
    Corpus.ce_seed = seed;
    ce_digest = Spec.digest spec;
    ce_engines = [ "interp"; "compiled" ];
    ce_check = "engines";
    ce_detail = "test entry";
    ce_spec = spec;
  }

let test_corpus_entry_roundtrip () =
  let e = mk_entry 17 in
  match Corpus.entry_of_json (Corpus.entry_json e) with
  | Error err -> Alcotest.failf "entry_of_json failed: %s" err
  | Ok e' ->
    Alcotest.(check string) "entry json roundtrip"
      (json_str (Corpus.entry_json e))
      (json_str (Corpus.entry_json e'))

let test_corpus_file_roundtrip () =
  let dir = Filename.temp_file "ocapi_corpus" "" in
  Sys.remove dir;
  let path = Filename.concat dir "corpus.jsonl" in
  (* A missing file is an empty corpus, not an error. *)
  (match Corpus.load path with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing corpus not empty"
  | Error e -> Alcotest.failf "missing corpus errored: %s" e);
  let entries = [ mk_entry 5; mk_entry 23 ] in
  Corpus.append path entries;
  (* Comment and blank lines are skipped on load. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "# trailing comment\n\n";
  close_out oc;
  Corpus.append path [ mk_entry 31 ];
  (match Corpus.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
    Alcotest.(check int) "3 entries survive comments" 3 (List.length loaded);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "entry preserved"
          (json_str (Corpus.entry_json a))
          (json_str (Corpus.entry_json b)))
      [ mk_entry 5; mk_entry 23; mk_entry 31 ]
      loaded);
  Sys.remove path;
  Unix.rmdir dir

(* A clean corpus entry replays green; an entry whose recorded digest
   was tampered with is counted as a replay failure. *)
let test_corpus_replay () =
  let good = mk_entry 9 in
  let bad = { (mk_entry 13) with Corpus.ce_digest = "bogus" } in
  let r =
    Diff.fuzz ~engines:[ "interp"; "compiled" ] ~corpus:[ good; bad ] ~seed:1
      ~count:0 ()
  in
  Alcotest.(check int) "two replays" 2 (List.length r.Diff.fz_replays);
  Alcotest.(check int) "one replay failure" 1 r.Diff.fz_replay_failures;
  let good_rp = List.hd r.Diff.fz_replays in
  Alcotest.(check bool) "good digest ok" true good_rp.Diff.rp_digest_ok;
  Alcotest.(check bool) "good replay clean" true (good_rp.Diff.rp_findings = [])

(* --- the injected-bug self-test -------------------------------------------- *)

let buggy_check spec =
  let buggy = Diff.register_buggy_engine () in
  Diff.check_spec ~engines:[ "interp"; buggy ] spec

(* The harness must actually catch a broken engine: fuzzing interp
   against the deliberately-broken engine finds divergences and shrinks
   them to reproducers whose genomes still fail. *)
let test_self_test_catches_bug () =
  let buggy = Diff.register_buggy_engine () in
  Alcotest.(check bool) "buggy engine not in default roster" false
    (List.mem buggy (Diff.default_engines ()));
  let r = Diff.fuzz ~engines:[ "interp"; buggy ] ~seed:7 ~count:3 () in
  Alcotest.(check bool) "divergences found" true (r.Diff.fz_divergent > 0);
  let shrunk =
    List.filter_map (fun d -> d.Diff.dr_shrunk) r.Diff.fz_results
  in
  Alcotest.(check bool) "some design shrunk" true (shrunk <> []);
  List.iter
    (fun (spec, digest, sz) ->
      Alcotest.(check string) "shrunk digest matches rebuild" digest
        (Spec.digest spec);
      Alcotest.(check int) "shrunk size recorded" (Spec.size spec) sz;
      Alcotest.(check bool) "shrunk genome still fails" true
        (buggy_check spec <> []))
    shrunk;
  let repros = Diff.report_reproducers r in
  Alcotest.(check int) "one reproducer per divergent design"
    r.Diff.fz_divergent (List.length repros)

(* --- shrinker invariants --------------------------------------------------- *)

let failing_spec () =
  (* The buggy engine flips probe bits from cycle 3 on, so any genome
     with enough cycles fails against it; seed 7 does. *)
  let s = Spec.generate ~seed:7 () in
  Alcotest.(check bool) "seed-7 genome fails the buggy roster" true
    (buggy_check s <> []);
  s

let test_shrink_invariants () =
  let s = failing_spec () in
  let m = Diff.shrink ~check:buggy_check s in
  Alcotest.(check bool) "shrunk still fails" true (buggy_check m <> []);
  Alcotest.(check bool) "shrunk no larger" true (Spec.size m <= Spec.size s);
  (* Deterministic: shrinking the same genome twice gives the same
     reproducer. *)
  let m' = Diff.shrink ~check:buggy_check s in
  Alcotest.(check string) "shrink deterministic"
    (json_str (Spec.to_json m))
    (json_str (Spec.to_json m'));
  (* A fixpoint: re-shrinking the reproducer finds nothing smaller. *)
  let m'' = Diff.shrink ~check:buggy_check m in
  Alcotest.(check int) "shrink is a fixpoint" (Spec.size m) (Spec.size m'')

(* A passing genome is returned unchanged. *)
let test_shrink_passing_identity () =
  let s = Spec.generate ~seed:1 () in
  let check spec = Diff.check_spec ~engines:[ "interp"; "compiled" ] spec in
  Alcotest.(check bool) "seed-1 genome is clean" true (check s = []);
  let m = Diff.shrink ~check s in
  Alcotest.(check string) "clean genome unchanged"
    (json_str (Spec.to_json s))
    (json_str (Spec.to_json m))

(* --- campaign report ------------------------------------------------------- *)

(* The canonical report is byte-identical between a serial run and a
   --domains 2 run (the determinism discipline every campaign follows),
   and stable across repeated serial runs. *)
let test_fuzz_report_deterministic () =
  let run domains =
    json_str
      (Diff.report_json
         (Diff.fuzz ~engines:[ "interp"; "compiled" ] ~domains ~seed:11
            ~count:6 ()))
  in
  let serial = run 1 in
  Alcotest.(check string) "serial run reproducible" serial (run 1);
  Alcotest.(check string) "--domains 2 byte-identical" serial (run 2)

let suite =
  [
    Alcotest.test_case "generator is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "seeds explore distinct designs" `Quick
      test_generate_seeds_differ;
    Alcotest.test_case "genome JSON roundtrip" `Quick test_spec_json_roundtrip;
    Alcotest.test_case "generated designs check clean" `Quick
      test_check_spec_clean;
    Alcotest.test_case "corpus entry JSON roundtrip" `Quick
      test_corpus_entry_roundtrip;
    Alcotest.test_case "corpus file roundtrip" `Quick test_corpus_file_roundtrip;
    Alcotest.test_case "corpus replay verifies digests" `Quick
      test_corpus_replay;
    Alcotest.test_case "self-test catches the injected bug" `Quick
      test_self_test_catches_bug;
    Alcotest.test_case "shrinker invariants" `Quick test_shrink_invariants;
    Alcotest.test_case "shrink keeps passing genomes" `Quick
      test_shrink_passing_identity;
    Alcotest.test_case "fuzz report is domain-count-invariant" `Quick
      test_fuzz_report_deterministic;
  ]
