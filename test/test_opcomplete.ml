(* An "op-complete" design: a single component whose SFGs exercise every
   Signal operator (both rounding-and-overflow modes of resize, ROM
   reads, shifts, all arithmetic / logic / comparison / mux forms), run
   through every engine and every back end.  Anything the engines or
   code generators get subtly wrong about any operator shows up here. *)

let clk = Clock.default
let s84 = Fixed.signed ~width:8 ~frac:4
let u6 = Fixed.unsigned ~width:6 ~frac:0
let bit = Fixed.bit_format

let build () =
  let table =
    Signal.Rom.create "oc_rom" s84
      (Array.init 16 (fun i -> Fixed.of_float s84 (float (i - 8) /. 4.0)))
  in
  let acc = Signal.Reg.create clk "oc_acc" s84 in
  let phase = Signal.Reg.create clk "oc_phase" bit in
  let idx = Signal.Reg.create clk "oc_idx" (Fixed.unsigned ~width:4 ~frac:0) in
  let everything =
    Sfg.build "oc_all" (fun b ->
        let x = Sfg.Builder.input b "x" s84 in
        let y = Sfg.Builder.input b "y" s84 in
        let open Signal in
        let sum = x +: y in
        let diff = x -: y in
        let prod = x *: y in
        let negx = neg x in
        let absy = abs_ y in
        let land_ = x &: y in
        let lor_ = x |: y in
        let lxor_ = x ^: y in
        let lnot_ = ~:x in
        let eq_ = x ==: y in
        let ne_ = x <>: y in
        let lt_ = x <: y in
        let le_ = x <=: y in
        let gt_ = x >: y in
        let ge_ = y >=: x in
        let m1 = mux2 lt_ sum diff in
        let m2 = mux2 eq_ prod (reg_q acc) in
        let shl2 = shift_left x 2 in
        let shr3 = shift_right prod 3 in
        let romv = rom table (reg_q idx) in
        let r_tw = resize ~round:Fixed.Truncate ~overflow:Fixed.Wrap s84 sum in
        let r_ns =
          resize ~round:Fixed.Round_nearest ~overflow:Fixed.Saturate s84 prod
        in
        let r_es =
          resize ~round:Fixed.Round_even ~overflow:Fixed.Saturate
            (Fixed.signed ~width:6 ~frac:1) diff
        in
        let r_nw =
          resize ~round:Fixed.Round_nearest ~overflow:Fixed.Wrap u6 absy
        in
        let combined =
          resize ~overflow:Fixed.Saturate s84
            (m1 +: m2 +: romv +: shr3
            +: resize s84 shl2
            +: resize s84 r_es
            +: resize s84 r_nw)
        in
        Sfg.Builder.output b "main_out" combined;
        Sfg.Builder.output b "flags"
          (resize (Fixed.unsigned ~width:6 ~frac:0)
             (resize u6 eq_ |: shift_left (resize u6 ne_) 1
             |: shift_left (resize u6 le_) 2
             |: shift_left (resize u6 gt_) 3
             |: shift_left (resize u6 ge_) 4
             |: shift_left (resize u6 lt_) 5));
        Sfg.Builder.output b "logic_out"
          (resize ~overflow:Fixed.Saturate s84 (land_ +: lor_ +: lxor_ +: lnot_));
        Sfg.Builder.output b "trunc_out" r_tw;
        Sfg.Builder.output b "sat_out" r_ns;
        Sfg.Builder.output b "neg_out" (resize ~overflow:Fixed.Saturate s84 negx);
        Sfg.Builder.assign_resized b acc combined;
        Sfg.Builder.assign b phase (~:(reg_q phase));
        Sfg.Builder.assign_resized b idx
          (reg_q idx +: consti (Fixed.unsigned ~width:4 ~frac:0) 1))
  in
  let quiet =
    Sfg.build "oc_quiet" (fun b ->
        let x = Sfg.Builder.input b "x" s84 in
        let y = Sfg.Builder.input b "y" s84 in
        let open Signal in
        Sfg.Builder.output b "main_out"
          (resize ~overflow:Fixed.Saturate s84 (x -: y));
        Sfg.Builder.output b "flags" (consti (Fixed.unsigned ~width:6 ~frac:0) 0);
        Sfg.Builder.output b "logic_out" (resize s84 (reg_q acc));
        Sfg.Builder.output b "trunc_out" (resize s84 x);
        Sfg.Builder.output b "sat_out" (resize s84 y);
        Sfg.Builder.output b "neg_out" (resize s84 (neg (reg_q acc)));
        Sfg.Builder.assign b phase (~:(reg_q phase));
        Sfg.Builder.assign_resized b idx
          (reg_q idx +: consti (Fixed.unsigned ~width:4 ~frac:0) 1))
  in
  let fsm = Fsm.create "oc_ctl" in
  let busy = Fsm.initial fsm "busy" in
  let calm = Fsm.state fsm "calm" in
  Fsm.(busy |-- cnd (Signal.reg_q phase) |+ quiet |-> calm);
  Fsm.(busy |-- always |+ everything |-> busy);
  Fsm.(calm |-- always |+ everything |-> busy);
  let sys = Cycle_system.create "opcomplete" in
  let c = Cycle_system.add_timed sys "allops" fsm in
  let sx =
    Cycle_system.add_input sys "x_in" s84 (fun cyc ->
        Some (Fixed.create s84 (Int64.of_int ((cyc * 37 mod 233) - 116))))
  in
  let sy =
    Cycle_system.add_input sys "y_in" s84 (fun cyc ->
        Some (Fixed.create s84 (Int64.of_int ((cyc * 53 mod 219) - 109))))
  in
  let probes = [ "main_out"; "flags"; "logic_out"; "trunc_out"; "sat_out"; "neg_out" ] in
  ignore (Cycle_system.connect sys (sx, "out") [ (c, "x") ]);
  ignore (Cycle_system.connect sys (sy, "out") [ (c, "y") ]);
  List.iter
    (fun p ->
      let pc = Cycle_system.add_output sys p in
      ignore (Cycle_system.connect sys (c, p) [ (pc, "in") ]))
    probes;
  sys

let test_engines_agree () =
  Alcotest.(check (list string)) "all engines" []
    (Flow.engines_agree (build ()) ~cycles:120)

let test_netlist_all_option_combinations () =
  List.iter
    (fun (share, encoding, optimize) ->
      let sys = build () in
      let options =
        { Synthesize.default_options with
          Synthesize.share_operators = share;
          Synthesize.state_encoding = encoding }
      in
      let r = Synthesize.verify ~options ~optimize sys ~cycles:60 in
      Alcotest.(check int)
        (Printf.sprintf "share=%b onehot=%b opt=%b" share
           (encoding = Synthesize.One_hot)
           optimize)
        0
        (List.length r.Synthesize.mismatches))
    [
      (true, Synthesize.Binary, false);
      (false, Synthesize.Binary, false);
      (true, Synthesize.One_hot, false);
      (true, Synthesize.Binary, true);
      (false, Synthesize.One_hot, true);
    ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_vhdl_markers () =
  let sys = build () in
  let files = Vhdl.of_system sys in
  let comp = List.assoc "allops.vhd" files in
  List.iter
    (fun marker -> Alcotest.(check bool) marker true (contains comp marker))
    [
      " + "; " - "; " * "; "abs("; " and "; " or "; " xor "; "not ";
      "rom_oc_rom"; "shift_left"; "to_signed"; "case state is";
    ]

let test_emitted_simulator () =
  (* Skipped on toolchain-less hosts, same rationale as the engines
     suite's end-to-end emitted-simulator test. *)
  if
    Sys.command
      "command -v ocamlfind >/dev/null 2>&1 || command -v ocamlopt >/dev/null 2>&1"
    <> 0
  then Alcotest.skip ();
  let sys = build () in
  let cycles = 40 in
  let interp = Flow.simulate sys ~cycles in
  Cycle_system.reset sys;
  let src = Compiled_sim.emit_ocaml sys ~cycles in
  let dir = Filename.temp_file "ocapi_oc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let ml = Filename.concat dir "sim.ml" in
  let oc = open_out ml in
  output_string oc src;
  close_out oc;
  let exe = Filename.concat dir "sim.exe" in
  let rc =
    Sys.command
      (Printf.sprintf "ocamlopt %s -o %s >/dev/null 2>&1 || ocamlfind ocamlopt %s -o %s >/dev/null 2>&1" ml exe ml exe)
  in
  if rc <> 0 then Alcotest.fail "emitted op-complete simulator failed to compile";
  let ic = Unix.open_process_in exe in
  let count = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr count
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let expected =
    List.fold_left (fun acc (_, h) -> acc + List.length h) 0 interp
  in
  Alcotest.(check int) "token count" expected !count

let suite =
  [
    Alcotest.test_case "engines agree on all ops" `Quick test_engines_agree;
    Alcotest.test_case "netlist verifies under every option" `Slow
      test_netlist_all_option_combinations;
    Alcotest.test_case "vhdl covers the operator set" `Quick test_vhdl_markers;
    Alcotest.test_case "emitted simulator (all ops)" `Slow test_emitted_simulator;
  ]
