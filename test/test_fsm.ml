(* Tests for Mealy FSM capture and execution (the fig 4 machinery). *)

let clk = Clock.default
let bit = Fixed.bit_format

(* The fig 4 machine: s0 -always/sfg1-> s1; s1 -eof/sfg2-> s1;
   s1 -!eof/sfg3-> s0. *)
let fig4 () =
  let eof = Signal.Reg.create clk "eof" bit in
  let sfg1 = Sfg.nop "sfg1" and sfg2 = Sfg.nop "sfg2" and sfg3 = Sfg.nop "sfg3" in
  let f = Fsm.create "f" in
  let s0 = Fsm.initial f "s0" and s1 = Fsm.state f "s1" in
  Fsm.(s0 |-- always |+ sfg1 |-> s1);
  Fsm.(s1 |-- cnd (Signal.reg_q eof) |+ sfg2 |-> s1);
  Fsm.(s1 |-- cnd Signal.(~:(reg_q eof)) |+ sfg3 |-> s0);
  (f, eof, s0, s1)

let action_names tr = List.map Sfg.name tr.Fsm.t_actions

let test_structure () =
  let f, _, s0, s1 = fig4 () in
  Alcotest.(check int) "states" 2 (List.length (Fsm.states f));
  Alcotest.(check int) "transitions" 3 (List.length (Fsm.transitions f));
  Alcotest.(check string) "initial" "s0" (Fsm.state_name (Fsm.initial_state f));
  Alcotest.(check int) "from s1" 2 (List.length (Fsm.transitions_from f s1));
  Alcotest.(check bool) "state_equal" true (Fsm.state_equal s0 s0);
  Alcotest.(check bool) "distinct" false (Fsm.state_equal s0 s1);
  Alcotest.(check int) "all sfgs" 3 (List.length (Fsm.all_sfgs f));
  Alcotest.(check int) "all regs (guards)" 1 (List.length (Fsm.all_regs f))

let test_execution () =
  let f, eof, _, s1 = fig4 () in
  Fsm.reset f;
  Signal.Reg.reset eof;
  (* s0 -> s1 unconditionally, running sfg1 *)
  (match Fsm.select f with
  | Some tr ->
    Alcotest.(check (list string)) "sfg1" [ "sfg1" ] (action_names tr);
    Fsm.advance f tr
  | None -> Alcotest.fail "no transition from s0");
  Alcotest.(check bool) "in s1" true (Fsm.state_equal (Fsm.current f) s1);
  (* eof = 0: back to s0 via sfg3 *)
  (match Fsm.select f with
  | Some tr ->
    Alcotest.(check (list string)) "sfg3" [ "sfg3" ] (action_names tr);
    Alcotest.(check string) "to s0" "s0" (Fsm.state_name tr.Fsm.t_goto)
  | None -> Alcotest.fail "no transition");
  (* eof = 1: stays in s1 via sfg2 *)
  Signal.Reg.set_value eof (Fixed.of_bool true);
  (match Fsm.select f with
  | Some tr -> Alcotest.(check (list string)) "sfg2" [ "sfg2" ] (action_names tr)
  | None -> Alcotest.fail "no transition");
  Fsm.reset f;
  Alcotest.(check string) "reset to s0" "s0" (Fsm.state_name (Fsm.current f))

let test_priority () =
  (* Two enabled transitions: the first declared wins. *)
  let c = Signal.Reg.create clk "prio_c" bit ~init:(Fixed.of_bool true) in
  let f = Fsm.create "prio" in
  let s0 = Fsm.initial f "s0" in
  Fsm.(s0 |-- cnd (Signal.reg_q c) |+ Sfg.nop "first" |-> s0);
  Fsm.(s0 |-- always |+ Sfg.nop "second" |-> s0);
  Signal.Reg.reset c;
  (match Fsm.select f with
  | Some tr -> Alcotest.(check (list string)) "first wins" [ "first" ] (action_names tr)
  | None -> Alcotest.fail "nothing selected");
  Signal.Reg.set_value c (Fixed.of_bool false);
  match Fsm.select f with
  | Some tr -> Alcotest.(check (list string)) "fallthrough" [ "second" ] (action_names tr)
  | None -> Alcotest.fail "nothing selected"

let test_implicit_hold () =
  let c = Signal.Reg.create clk "hold_c" bit in
  let f = Fsm.create "holder" in
  let s0 = Fsm.initial f "s0" in
  Fsm.(s0 |-- cnd (Signal.reg_q c) |+ Sfg.nop "go" |-> s0);
  Signal.Reg.reset c;
  Alcotest.(check bool) "nothing enabled" true (Fsm.select f = None)

let test_guard_validation () =
  (* Guards must be one bit wide... *)
  (match Fsm.cnd (Signal.consti (Fixed.signed ~width:4 ~frac:0) 1) with
  | exception Fsm.Fsm_error _ -> ()
  | _ -> Alcotest.fail "wide guard accepted");
  (* ...and must not read SFG inputs. *)
  let i = Signal.Input.create "pin" bit in
  match Fsm.cnd (Signal.input i) with
  | exception Fsm.Fsm_error _ -> ()
  | _ -> Alcotest.fail "input-dependent guard accepted"

let test_guard_combinators () =
  let a = Signal.Reg.create clk "ga" bit and b = Signal.Reg.create clk "gb" bit in
  let g =
    Fsm.gand (Fsm.cnd (Signal.reg_q a)) (Fsm.gnot (Fsm.cnd (Signal.reg_q b)))
  in
  let e = Fsm.guard_expr g in
  let env = Signal.Env.create () in
  Signal.Reg.set_value a (Fixed.of_bool true);
  Signal.Reg.set_value b (Fixed.of_bool false);
  Alcotest.(check bool) "a and not b" true (Fixed.is_true (Signal.eval env e));
  Signal.Reg.set_value b (Fixed.of_bool true);
  Alcotest.(check bool) "a and not b off" false (Fixed.is_true (Signal.eval env e));
  Alcotest.(check bool) "gor always" true
    (Fsm.is_always (Fsm.gor Fsm.always (Fsm.cnd (Signal.reg_q a))));
  Alcotest.(check bool) "gand always absorbs" false
    (Fsm.is_always (Fsm.gand Fsm.always (Fsm.cnd (Signal.reg_q a))))

let test_checks () =
  (* Unreachable state. *)
  let f = Fsm.create "unreach" in
  let s0 = Fsm.initial f "s0" in
  let _orphan = Fsm.state f "orphan" in
  Fsm.(s0 |-- always |+ Sfg.nop "n" |-> s0);
  let issues = Fsm.check f in
  Alcotest.(check bool) "unreachable reported" true
    (List.exists
       (function Fsm.Unreachable_state "orphan" -> true | _ -> false)
       issues);
  (* Incomplete machine (can hold implicitly). *)
  let c = Signal.Reg.create clk "chk_c" bit in
  let g = Fsm.create "incomplete" in
  let t0 = Fsm.initial g "t0" in
  Fsm.(t0 |-- cnd (Signal.reg_q c) |+ Sfg.nop "x" |-> t0);
  let issues = Fsm.check g in
  Alcotest.(check bool) "incomplete reported" true
    (List.exists (function Fsm.Incomplete "t0" -> true | _ -> false) issues);
  (* Overlap flagged only when requested. *)
  let h = Fsm.create "overlap" in
  let u0 = Fsm.initial h "u0" in
  Fsm.(u0 |-- always |+ Sfg.nop "p" |-> u0);
  Fsm.(u0 |-- always |+ Sfg.nop "q" |-> u0);
  Alcotest.(check bool) "no overlap by default" false
    (List.exists (function Fsm.Nondeterministic _ -> true | _ -> false)
       (Fsm.check h));
  Alcotest.(check bool) "overlap when flagged" true
    (List.exists (function Fsm.Nondeterministic _ -> true | _ -> false)
       (Fsm.check ~flag_overlaps:true h));
  (* A no-initial machine. *)
  let k = Fsm.create "noinit" in
  ignore (Fsm.state k "lonely");
  Alcotest.(check bool) "no initial" true
    (List.exists (function Fsm.No_initial -> true | _ -> false) (Fsm.check k))

let test_duplicate_state_rejected () =
  let f = Fsm.create "dup" in
  ignore (Fsm.initial f "a");
  match Fsm.state f "a" with
  | exception Fsm.Fsm_error _ -> ()
  | _ -> Alcotest.fail "duplicate state accepted"

let test_double_initial_rejected () =
  let f = Fsm.create "dinit" in
  ignore (Fsm.initial f "a");
  match Fsm.initial f "b" with
  | exception Fsm.Fsm_error _ -> ()
  | _ -> Alcotest.fail "second initial accepted"

let test_foreign_state_rejected () =
  let f = Fsm.create "f1" and g = Fsm.create "f2" in
  let sf = Fsm.initial f "s" and sg = Fsm.initial g "s" in
  match Fsm.add_transition f ~from:sf ~guard:Fsm.always ~actions:[] ~goto:sg with
  | exception Fsm.Fsm_error _ -> ()
  | _ -> Alcotest.fail "foreign goto accepted"

let suite =
  [
    Alcotest.test_case "fig 4 structure" `Quick test_structure;
    Alcotest.test_case "fig 4 execution" `Quick test_execution;
    Alcotest.test_case "priority order" `Quick test_priority;
    Alcotest.test_case "implicit hold" `Quick test_implicit_hold;
    Alcotest.test_case "guard validation" `Quick test_guard_validation;
    Alcotest.test_case "guard combinators" `Quick test_guard_combinators;
    Alcotest.test_case "checks" `Quick test_checks;
    Alcotest.test_case "duplicate state" `Quick test_duplicate_state_rejected;
    Alcotest.test_case "double initial" `Quick test_double_initial_rejected;
    Alcotest.test_case "foreign state" `Quick test_foreign_state_rejected;
  ]
