(* Tests for the three-phase cycle scheduler (paper section 4). *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

(* An accumulator system (timed only). *)
let accumulator_system () =
  let acc = Signal.Reg.create clk "sch_acc" s8 in
  let sfg =
    Sfg.build "sch_accumulate" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        let sum = Signal.(x +: reg_q acc) in
        Sfg.Builder.output b "sum" (Signal.resize s8 sum);
        Sfg.Builder.assign_resized b acc sum)
  in
  let fsm = Fsm.create "sch_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "sch_smoke" in
  let comp = Cycle_system.add_timed sys "accumulator" fsm in
  let stim =
    Cycle_system.add_input sys "x_in" s8 (fun c -> Some (Fixed.of_int s8 (c + 1)))
  in
  let probe = Cycle_system.add_output sys "sum_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (comp, "x") ]);
  ignore (Cycle_system.connect sys (comp, "sum") [ (probe, "in") ]);
  (sys, probe)

let test_accumulator () =
  let sys, probe = accumulator_system () in
  Cycle_system.run sys 5;
  let values =
    List.map (fun (_, v) -> Fixed.to_int v) (Cycle_system.output_history sys probe)
  in
  Alcotest.(check (list int)) "triangular" [ 1; 3; 6; 10; 15 ] values;
  Alcotest.(check int) "cycle count" 5 (Cycle_system.current_cycle sys);
  Cycle_system.reset sys;
  Alcotest.(check int) "reset" 0 (Cycle_system.current_cycle sys);
  Alcotest.(check int) "history cleared" 0
    (List.length (Cycle_system.output_history sys probe));
  Cycle_system.run sys 2;
  let values =
    List.map (fun (_, v) -> Fixed.to_int v) (Cycle_system.output_history sys probe)
  in
  Alcotest.(check (list int)) "replays identically" [ 1; 3 ] values

let test_two_phase_matches_on_simple () =
  let sys, probe = accumulator_system () in
  Cycle_system.run ~two_phase:true sys 4;
  let values =
    List.map (fun (_, v) -> Fixed.to_int v) (Cycle_system.output_history sys probe)
  in
  Alcotest.(check (list int)) "2-phase same results" [ 1; 3; 6; 10 ] values

(* The fig 6 situation: a circular dependency between a timed component
   and an untimed one.  The timed component's output to the kernel
   depends only on a register (producible in the token-production
   phase); its register update needs the kernel's reply. *)
let fig6_system () =
  let state = Signal.Reg.create clk "fig6_state" s8 in
  let sfg =
    Sfg.build "fig6_step" (fun b ->
        let reply = Sfg.Builder.input b "reply" s8 in
        Sfg.Builder.output b "query" (Signal.resize s8 (Signal.reg_q state));
        Sfg.Builder.assign_resized b state Signal.(reply +: consti s8 0))
  in
  let fsm = Fsm.create "fig6_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let incr_kernel =
    Dataflow.Kernel.create "incr"
      ~formats:[ ("in", s8); ("out", s8) ]
      ~inputs:[ ("in", 1) ] ~outputs:[ ("out", 1) ]
      (fun consumed ->
        match consumed with
        | [ ("in", [ v ]) ] ->
          [ ("out", [ Fixed.resize s8 (Fixed.add v (Fixed.of_int s8 1)) ]) ]
        | _ -> assert false)
  in
  let sys = Cycle_system.create "fig6" in
  let timed = Cycle_system.add_timed sys "stepper" fsm in
  let untimed = Cycle_system.add_untimed sys incr_kernel in
  let probe = Cycle_system.add_output sys "q_out" in
  ignore (Cycle_system.connect sys (timed, "query") [ (untimed, "in"); (probe, "in") ]);
  ignore (Cycle_system.connect sys (untimed, "out") [ (timed, "reply") ]);
  (sys, probe, state)

let test_fig6_three_phase_resolves () =
  let sys, probe, state = fig6_system () in
  Signal.Reg.reset state;
  Cycle_system.run sys 4;
  let values =
    List.map (fun (_, v) -> Fixed.to_int v) (Cycle_system.output_history sys probe)
  in
  (* Each cycle: query = state; kernel replies state+1; register takes it. *)
  Alcotest.(check (list int)) "counts up" [ 0; 1; 2; 3 ] values;
  let st = Cycle_system.stats sys in
  Alcotest.(check int) "untimed fired each cycle" 4 st.Cycle_system.untimed_firings

let test_fig6_two_phase_deadlocks () =
  let sys, _, state = fig6_system () in
  Signal.Reg.reset state;
  match Cycle_system.run ~two_phase:true sys 1 with
  | exception Cycle_system.Deadlock waiting ->
    Alcotest.(check bool) "names the stepper" true
      (List.exists (fun s -> s = "stepper/fig6_step") waiting)
  | () -> Alcotest.fail "two-phase scheduler resolved a circular dependency"

let test_true_combinational_loop_detected () =
  (* Two timed components whose outputs combinationally depend on each
     other's: a real loop that must be declared a deadlock. *)
  let mk name =
    let sfg =
      Sfg.build (name ^ "_sfg") (fun b ->
          let x = Sfg.Builder.input b "x" s8 in
          Sfg.Builder.output b "y" (Signal.resize s8 Signal.(x +: consti s8 1)))
    in
    let fsm = Fsm.create (name ^ "_ctl") in
    let s0 = Fsm.initial fsm "s0" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    fsm
  in
  let sys = Cycle_system.create "comb_loop" in
  let a = Cycle_system.add_timed sys "a" (mk "a") in
  let b = Cycle_system.add_timed sys "b" (mk "b") in
  ignore (Cycle_system.connect sys (a, "y") [ (b, "x") ]);
  ignore (Cycle_system.connect sys (b, "y") [ (a, "x") ]);
  match Cycle_system.cycle sys with
  | exception Cycle_system.Deadlock waiting ->
    Alcotest.(check int) "both waiting" 2 (List.length waiting)
  | () -> Alcotest.fail "combinational loop not detected"

let test_checks () =
  let sys, _ = accumulator_system () in
  Alcotest.(check int) "clean system" 0 (List.length (Cycle_system.check sys));
  (* A dangling input. *)
  let sfg =
    Sfg.build "lonely" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "y" (Signal.resize s8 x))
  in
  let fsm = Fsm.create "lonely_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys2 = Cycle_system.create "dangling" in
  ignore (Cycle_system.add_timed sys2 "c" fsm);
  let issues = Cycle_system.check sys2 in
  Alcotest.(check bool) "dangling input reported" true
    (List.exists
       (function Cycle_system.Unconnected_input ("c", "x") -> true | _ -> false)
       issues);
  Alcotest.(check bool) "unconnected output reported" true
    (List.exists
       (function Cycle_system.Unconnected_output ("c", "y") -> true | _ -> false)
       issues)

let test_connect_validation () =
  let sys, _ = accumulator_system () in
  let comp =
    match Cycle_system.find_component sys "accumulator" with
    | Some c -> c
    | None -> Alcotest.fail "component lost"
  in
  (match Cycle_system.connect sys (comp, "nonexistent") [] with
  | exception Cycle_system.System_error _ -> ()
  | _ -> Alcotest.fail "bad driver port accepted");
  match Cycle_system.connect sys (comp, "sum") [ (comp, "x") ] with
  | exception Cycle_system.System_error _ -> () (* x is already driven *)
  | _ -> Alcotest.fail "double-driven sink accepted"

let test_missing_stimulus_deadlocks () =
  let sys, _ = accumulator_system () in
  (* A fresh system whose stimulus skips cycle 2. *)
  ignore sys;
  let acc = Signal.Reg.create clk "ms_acc" s8 in
  let sfg =
    Sfg.build "ms_sfg" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.assign_resized b acc Signal.(x +: reg_q acc);
        Sfg.Builder.output b "o" (Signal.resize s8 (Signal.reg_q acc)))
  in
  let fsm = Fsm.create "ms_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "missing" in
  let comp = Cycle_system.add_timed sys "c" fsm in
  let stim =
    Cycle_system.add_input sys "x_in" s8 (fun c ->
        if c = 2 then None else Some (Fixed.of_int s8 1))
  in
  ignore (Cycle_system.connect sys (stim, "out") [ (comp, "x") ]);
  Cycle_system.run sys 2;
  match Cycle_system.cycle sys with
  | exception Cycle_system.Deadlock _ -> ()
  | () -> Alcotest.fail "missing token not detected"

let test_net_tracing () =
  let acc = Signal.Reg.create clk "tr_acc" s8 in
  let sfg =
    Sfg.build "tr_sfg" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "o" (Signal.resize s8 x);
        Sfg.Builder.assign_resized b acc Signal.(x +: consti s8 0))
  in
  let fsm = Fsm.create "tr_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "traced" in
  let comp = Cycle_system.add_timed sys "c" fsm in
  let stim =
    Cycle_system.add_input sys "x_in" s8 (fun c -> Some (Fixed.of_int s8 c))
  in
  let net = Cycle_system.connect sys (stim, "out") [ (comp, "x") ] in
  Cycle_system.trace_net sys net;
  Cycle_system.run sys 3;
  Alcotest.(check (list int)) "trace" [ 0; 1; 2 ]
    (List.map (fun (_, v) -> Fixed.to_int v) (Cycle_system.net_history sys net));
  Alcotest.(check int) "input history" 3
    (List.length (Cycle_system.input_history sys))

let test_sfg_kernel_bridge () =
  (* An SFG with state behaves identically as a data-flow kernel. *)
  let acc = Signal.Reg.create clk "br_acc" s8 in
  let sfg =
    Sfg.build "br_sfg" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        let sum = Signal.(x +: reg_q acc) in
        Sfg.Builder.output b "sum" (Signal.resize s8 sum);
        Sfg.Builder.assign_resized b acc sum)
  in
  Signal.Reg.reset acc;
  let k = Sfg_kernel.kernel_of_sfg sfg in
  let g = Dataflow.create "bridge" in
  let src =
    Dataflow.add_process g
      (Dataflow.Kernel.source "s" (List.map (Fixed.of_int s8) [ 1; 2; 3 ]))
  in
  let p = Dataflow.add_process g k in
  let sink_k, drained = Dataflow.Kernel.sink "d" in
  let sink = Dataflow.add_process g sink_k in
  ignore (Dataflow.connect g (src, "out") (p, "x"));
  ignore (Dataflow.connect g (p, "sum") (sink, "in"));
  ignore (Dataflow.run g);
  Alcotest.(check (list int)) "running sums" [ 1; 3; 6 ]
    (List.map Fixed.to_int (drained ()));
  k.Dataflow.Kernel.k_reset ();
  Alcotest.(check int) "bridge reset clears state" 0
    (Fixed.to_int (Signal.Reg.value acc))

let test_stats () =
  let sys, _ = accumulator_system () in
  Cycle_system.run sys 10;
  let st = Cycle_system.stats sys in
  Alcotest.(check int) "cycles" 10 st.Cycle_system.cycles;
  Alcotest.(check bool) "tokens flowed" true (st.Cycle_system.tokens_transferred >= 20)


(* Section 4's comparison: the same circular structure works as a pure
   data-flow graph when an initial token is introduced, and the token
   streams of the two paradigms coincide. *)
let test_fig6_dataflow_with_initial_token () =
  let sys, probe, state = fig6_system () in
  Signal.Reg.reset state;
  Cycle_system.run sys 6;
  let cycle_stream =
    List.map (fun (_, v) -> Fixed.to_int v) (Cycle_system.output_history sys probe)
  in
  (* The data-flow formulation: the register becomes an initial token
     on the feedback channel (holding the register's init value), and
     the stepper reduces to passing the reply through as the next
     query — exactly the transformation section 4 describes. *)
  let g = Dataflow.create "fig6_df" in
  let queries = ref [] in
  let stepper =
    Dataflow.Kernel.create "stepper" ~inputs:[ ("reply", 1) ]
      ~outputs:[ ("query", 1) ]
      (fun consumed ->
        match consumed with
        | [ ("reply", [ r ]) ] ->
          queries := r :: !queries;
          [ ("query", [ Fixed.resize s8 r ]) ]
        | _ -> assert false)
  in
  let incr =
    Dataflow.Kernel.create "incr" ~inputs:[ ("in", 1) ] ~outputs:[ ("out", 1) ]
      (fun consumed ->
        match consumed with
        | [ ("in", [ v ]) ] ->
          [ ("out", [ Fixed.resize s8 (Fixed.add v (Fixed.of_int s8 1)) ]) ]
        | _ -> assert false)
  in
  let p_step = Dataflow.add_process g stepper in
  let p_incr = Dataflow.add_process g incr in
  ignore (Dataflow.connect g (p_step, "query") (p_incr, "in"));
  let back = Dataflow.connect g (p_incr, "out") (p_step, "reply") in
  (* Without the initial token: stuck.  With it: the loop turns. *)
  let stats = Dataflow.run ~max_firings:4 g in
  Alcotest.(check int) "stuck without initial token" 0 stats.Dataflow.steps;
  Dataflow.initial_tokens g back [ Fixed.of_int s8 0 ];
  ignore (Dataflow.run ~max_firings:12 g);
  let df_stream = List.rev_map Fixed.to_int !queries in
  (* Both paradigms produce the same counting sequence. *)
  List.iteri
    (fun i v ->
      match List.nth_opt df_stream i with
      | Some w -> Alcotest.(check int) (Printf.sprintf "token %d" i) v w
      | None -> Alcotest.fail "data-flow stream too short")
    cycle_stream

let suite =
  [
    Alcotest.test_case "accumulator" `Quick test_accumulator;
    Alcotest.test_case "two-phase on loop-free design" `Quick
      test_two_phase_matches_on_simple;
    Alcotest.test_case "fig 6: three-phase resolves" `Quick
      test_fig6_three_phase_resolves;
    Alcotest.test_case "fig 6: two-phase deadlocks" `Quick
      test_fig6_two_phase_deadlocks;
    Alcotest.test_case "fig 6: data-flow with initial token" `Quick
      test_fig6_dataflow_with_initial_token;
    Alcotest.test_case "combinational loop detected" `Quick
      test_true_combinational_loop_detected;
    Alcotest.test_case "interconnect checks" `Quick test_checks;
    Alcotest.test_case "connect validation" `Quick test_connect_validation;
    Alcotest.test_case "missing stimulus deadlocks" `Quick
      test_missing_stimulus_deadlocks;
    Alcotest.test_case "net tracing" `Quick test_net_tracing;
    Alcotest.test_case "sfg-kernel bridge" `Quick test_sfg_kernel_bridge;
    Alcotest.test_case "stats" `Quick test_stats;
  ]
