(* Tests for the fault-injection subsystem: zero-fault SEU controls
   against all three cycle engines, hand-computed stuck-at coverage,
   campaign determinism, and graceful degradation of non-settling
   faulty circuits into per-run diagnostics. *)

let dect_design () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float_of_int c *. 0.37) /. 2.2)))
      ()
  in
  d.Dect_transceiver.system

let hcor_design () =
  let bits = Dect_stimuli.burst ~seed:1 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

(* --- zero-fault controls --------------------------------------------------- *)

(* The SEU harness run with no injection must be bit-identical to the
   plain engine run: the campaign machinery itself must not perturb
   the simulation. *)
let check_control engine =
  let cycles = 48 in
  let golden = Flow.simulate ~engine (dect_design ()) ~cycles in
  let control = Ocapi_fault.control_run ~engine (dect_design ()) ~cycles in
  match Flow.first_history_mismatch golden control with
  | None -> ()
  | Some (probe, cycle, detail) ->
    Alcotest.failf "%s control diverged at probe %s%s: %s" engine probe
      (match cycle with Some c -> Printf.sprintf " cycle %d" c | None -> "")
      detail

let test_control_interp () = check_control "interp"
let test_control_compiled () = check_control "compiled"
let test_control_rtl () = check_control "rtl"

(* --- stuck-at on a hand-computed netlist ----------------------------------- *)

let and_netlist () =
  let nl = Netlist.create "and2" in
  let a = Netlist.input_bus nl "a" 1 and b = Netlist.input_bus nl "b" 1 in
  Netlist.output_bus nl "y" [| Netlist.gate nl Netlist.And [ a.(0); b.(0) ] |];
  nl

(* Exhaustive stimuli expose every stuck-at fault of a 2-input AND:
   coverage must be exactly 1. *)
let test_stuck_at_and_exhaustive () =
  let vectors =
    [|
      [ ("a", 0L); ("b", 0L) ];
      [ ("a", 0L); ("b", 1L) ];
      [ ("a", 1L); ("b", 0L) ];
      [ ("a", 1L); ("b", 1L) ];
    |]
  in
  let r = Ocapi_fault.stuck_at_netlist (and_netlist ()) ~vectors in
  Alcotest.(check bool) "universe non-empty" true (r.Ocapi_fault.st_universe > 0);
  Alcotest.(check bool)
    "collapsing shrinks the universe" true
    (r.Ocapi_fault.st_collapsed < r.Ocapi_fault.st_universe);
  Alcotest.(check int)
    "all collapsed faults simulated" r.Ocapi_fault.st_collapsed
    r.Ocapi_fault.st_simulated;
  Alcotest.(check int) "no diagnosed faults" 0 r.Ocapi_fault.st_diagnosed;
  Alcotest.(check int)
    "every fault detected" r.Ocapi_fault.st_simulated
    r.Ocapi_fault.st_detected;
  Alcotest.(check (float 1e-9)) "coverage 100%" 1.0 r.Ocapi_fault.st_coverage

(* A single vector (1,1) cannot expose the stuck-at-1 faults: the
   campaign must report them undetected and coverage strictly below 1. *)
let test_stuck_at_and_weak_stimuli () =
  let vectors = [| [ ("a", 1L); ("b", 1L) ] |] in
  let r = Ocapi_fault.stuck_at_netlist (and_netlist ()) ~vectors in
  Alcotest.(check bool) "some fault detected" true (r.Ocapi_fault.st_detected > 0);
  Alcotest.(check bool)
    "stuck-at-1 faults escape" true
    (r.Ocapi_fault.st_undetected > 0);
  Alcotest.(check bool)
    "coverage below 100%" true
    (r.Ocapi_fault.st_coverage < 1.0);
  Alcotest.(check int)
    "classes partition the campaign" r.Ocapi_fault.st_simulated
    (r.Ocapi_fault.st_detected + r.Ocapi_fault.st_undetected
   + r.Ocapi_fault.st_diagnosed)

(* --- stuck-at on the synthesized HCOR -------------------------------------- *)

let test_stuck_at_hcor () =
  let r =
    Ocapi_fault.stuck_at_system ~max_faults:60 ~seed:1 (hcor_design ())
      ~cycles:8
  in
  Alcotest.(check int) "sample size honoured" 60 r.Ocapi_fault.st_simulated;
  Alcotest.(check bool)
    "collapsing shrinks the universe" true
    (r.Ocapi_fault.st_collapsed < r.Ocapi_fault.st_universe);
  Alcotest.(check int) "vectors recorded" 8 r.Ocapi_fault.st_vectors;
  Alcotest.(check bool)
    "stimuli expose some faults" true
    (r.Ocapi_fault.st_detected > 0);
  Alcotest.(check int)
    "classes partition the campaign" r.Ocapi_fault.st_simulated
    (r.Ocapi_fault.st_detected + r.Ocapi_fault.st_undetected
   + r.Ocapi_fault.st_diagnosed)

(* --- a non-settling faulty circuit degrades to a diagnostic ---------------- *)

(* en = 0 keeps the NAND feedback loop stable (a = 1); forcing en
   stuck-at-1 turns it into a ring oscillator.  The campaign must
   record the oscillation as a Did_not_settle diagnostic and keep
   going instead of aborting. *)
let test_oscillation_diagnosed () =
  let nl = Netlist.create "osc" in
  let en = Netlist.input_bus nl "en" 1 in
  let b = Netlist.new_net nl in
  let a = Netlist.gate nl Netlist.Nand [ en.(0); b ] in
  Netlist.buf_into nl ~dst:b a;
  Netlist.output_bus nl "q" [| a |];
  let vectors = [| [ ("en", 0L) ] |] in
  let r = Ocapi_fault.stuck_at_netlist ~settle_budget:200 nl ~vectors in
  Alcotest.(check bool)
    "oscillating fault diagnosed" true
    (r.Ocapi_fault.st_diagnosed > 0);
  Alcotest.(check int)
    "campaign completed despite it" r.Ocapi_fault.st_simulated
    (r.Ocapi_fault.st_detected + r.Ocapi_fault.st_undetected
   + r.Ocapi_fault.st_diagnosed);
  let is_did_not_settle rec_ =
    match rec_.Ocapi_fault.sr_outcome with
    | Ocapi_fault.Sa_diagnosed d -> d.Ocapi_error.e_code = Ocapi_error.Did_not_settle
    | _ -> false
  in
  Alcotest.(check bool)
    "diagnostic carries Did_not_settle" true
    (List.exists is_did_not_settle r.Ocapi_fault.st_records)

(* --- SEU campaigns ---------------------------------------------------------- *)

let test_seu_deterministic () =
  let run () =
    Ocapi_fault.seu_campaign ~engine:"compiled" ~runs:120 ~seed:7
      (dect_design ()) ~cycles:32
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same seed, same report" true (r1 = r2);
  Alcotest.(check int)
    "classes partition the runs" r1.Ocapi_fault.seu_runs
    (r1.Ocapi_fault.seu_masked + r1.Ocapi_fault.seu_sdc
   + r1.Ocapi_fault.seu_detected)

(* Same seed must pick the same targets on every engine: target
   selection depends only on the system's register/state inventory,
   never on the engine. *)
let test_seu_targets_engine_independent () =
  let labels engine =
    let r =
      Ocapi_fault.seu_campaign ~engine ~runs:25 ~seed:3 (dect_design ())
        ~cycles:16
    in
    List.map
      (fun run -> (run.Ocapi_fault.run_label, run.Ocapi_fault.run_cycle))
      r.Ocapi_fault.seu_records
  in
  let li = labels "interp" in
  let lc = labels "compiled" in
  let lr = labels "rtl" in
  Alcotest.(check bool) "interp = compiled targets" true (li = lc);
  Alcotest.(check bool) "compiled = rtl targets" true (lc = lr)

(* With the result cache enabled, a repeated SEU campaign is served as
   a memoized report: bit-identical to the cold run, counted as a cache
   hit, and the per-run progress hook never fires. *)
let test_seu_report_cached () =
  Flow.Cache.enable ();
  Fun.protect
    ~finally:(fun () ->
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ())
    (fun () ->
      let run () =
        let ticks = ref 0 in
        let report =
          Ocapi_fault.seu_campaign ~engine:"compiled" ~runs:30 ~seed:5
            ~progress:(fun _ -> incr ticks)
            (dect_design ()) ~cycles:24
        in
        (report, !ticks)
      in
      let cold, cold_ticks = run () in
      let before = Flow.Cache.stats () in
      let warm, warm_ticks = run () in
      let after = Flow.Cache.stats () in
      Alcotest.(check bool) "cold run actually ran" true (cold_ticks > 0);
      Alcotest.(check int) "warm run served from cache, no progress" 0
        warm_ticks;
      Alcotest.(check int) "one more cache hit" (before.Flow.Cache.hits + 1)
        after.Flow.Cache.hits;
      let s r = Ocapi_obs.Json.to_string (Ocapi_fault.seu_report_json r) in
      Alcotest.(check string) "warm report = cold report" (s cold) (s warm))

let suite =
  [
    Alcotest.test_case "zero-fault control: interpreted" `Quick
      test_control_interp;
    Alcotest.test_case "SEU report memoized via Flow.Cache" `Quick
      test_seu_report_cached;
    Alcotest.test_case "zero-fault control: compiled" `Quick
      test_control_compiled;
    Alcotest.test_case "zero-fault control: rtl" `Quick test_control_rtl;
    Alcotest.test_case "stuck-at AND, exhaustive stimuli" `Quick
      test_stuck_at_and_exhaustive;
    Alcotest.test_case "stuck-at AND, weak stimuli" `Quick
      test_stuck_at_and_weak_stimuli;
    Alcotest.test_case "stuck-at HCOR sample" `Quick test_stuck_at_hcor;
    Alcotest.test_case "oscillating fault diagnosed, not fatal" `Quick
      test_oscillation_diagnosed;
    Alcotest.test_case "SEU campaign deterministic" `Quick
      test_seu_deterministic;
    Alcotest.test_case "SEU targets engine-independent" `Quick
      test_seu_targets_engine_independent;
  ]
