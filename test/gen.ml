(* Shared random generators for the property-based tests. *)

let format_gen =
  QCheck.Gen.(
    let* signedness = oneofl [ Fixed.Signed; Fixed.Unsigned ] in
    let* width = int_range 1 14 in
    let* frac = int_range (-3) 8 in
    return (Fixed.format signedness ~width ~frac))

let value_of_format_gen fmt =
  QCheck.Gen.(
    let lo = Fixed.min_mantissa fmt and hi = Fixed.max_mantissa fmt in
    let* m = int_range (Int64.to_int lo) (Int64.to_int hi) in
    return (Fixed.create fmt (Int64.of_int m)))

let value_gen =
  QCheck.Gen.(format_gen >>= fun fmt -> value_of_format_gen fmt)

let pair_same_format_gen =
  QCheck.Gen.(
    let* fmt = format_gen in
    let* a = value_of_format_gen fmt in
    let* b = value_of_format_gen fmt in
    return (a, b))

let value_arb = QCheck.make ~print:Fixed.to_string value_gen

let pair_arb =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)" (Fixed.to_string a) (Fixed.to_string b))
    QCheck.Gen.(
      let* a = value_gen in
      let* b = value_gen in
      return (a, b))

let pair_same_arb =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)" (Fixed.to_string a) (Fixed.to_string b))
    pair_same_format_gen

let rounding_gen =
  QCheck.Gen.oneofl [ Fixed.Truncate; Fixed.Round_nearest; Fixed.Round_even ]

let overflow_gen = QCheck.Gen.oneofl [ Fixed.Wrap; Fixed.Saturate ]

(* A random register/constant/input expression over given leaves, for
   engine-equivalence properties.  Depth-bounded; formats kept small so
   full-precision results stay within max_width. *)
let rec expr_gen ~inputs ~regs depth =
  QCheck.Gen.(
    if depth = 0 then leaf_gen ~inputs ~regs
    else
      frequency
        [
          (2, leaf_gen ~inputs ~regs);
          ( 5,
            let* a = expr_gen ~inputs ~regs (depth - 1) in
            let* b = expr_gen ~inputs ~regs (depth - 1) in
            let* k = int_range 0 5 in
            return
              (match k with
              | 0 -> Signal.add a b
              | 1 -> Signal.sub a b
              | 2 -> Signal.and_ a b
              | 3 -> Signal.or_ a b
              | 4 -> Signal.xor_ a b
              | _ -> Signal.eq a b) );
          ( 2,
            let* a = expr_gen ~inputs ~regs (depth - 1) in
            let* k = int_range 0 2 in
            return
              (match k with
              | 0 -> Signal.neg a
              | 1 -> Signal.not_ a
              | _ -> Signal.abs_ a) );
          ( 2,
            let* s1 = expr_gen ~inputs ~regs (depth - 1) in
            let* s2 = expr_gen ~inputs ~regs (depth - 1) in
            let* a = expr_gen ~inputs ~regs (depth - 1) in
            let* b = expr_gen ~inputs ~regs (depth - 1) in
            return (Signal.mux2 (Signal.lt s1 s2) a b) );
          ( 2,
            let* a = expr_gen ~inputs ~regs (depth - 1) in
            let* fmt = format_gen in
            let* round = rounding_gen in
            let* overflow = overflow_gen in
            return (Signal.resize ~round ~overflow fmt a) );
        ])

and leaf_gen ~inputs ~regs =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          let* i = int_range 0 (Array.length inputs - 1) in
          return (Signal.input inputs.(i)) );
        ( 3,
          let* i = int_range 0 (Array.length regs - 1) in
          return (Signal.reg_q regs.(i)) );
        (1, value_gen >>= fun v -> return (Signal.const v));
      ])
