(* Tests for signal flow graphs: construction, checks, firing. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

let simple_sfg () =
  let acc = Signal.Reg.create clk "t_acc" s8 in
  let sfg =
    Sfg.build "acc_sfg" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        let sum = Signal.(x +: reg_q acc) in
        Sfg.Builder.output b "sum" (Signal.resize s8 sum);
        Sfg.Builder.assign_resized b acc sum)
  in
  (sfg, acc)

let test_accessors () =
  let sfg, acc = simple_sfg () in
  Alcotest.(check string) "name" "acc_sfg" (Sfg.name sfg);
  Alcotest.(check int) "inputs" 1 (List.length (Sfg.inputs sfg));
  Alcotest.(check int) "outputs" 1 (List.length (Sfg.outputs sfg));
  Alcotest.(check int) "assigns" 1 (List.length (Sfg.assigns sfg));
  Alcotest.(check bool) "regs_written" true
    (List.exists (fun r -> Signal.Reg.id r = Signal.Reg.id acc) (Sfg.regs_written sfg));
  Alcotest.(check bool) "regs_read" true
    (List.exists (fun r -> Signal.Reg.id r = Signal.Reg.id acc) (Sfg.regs_read sfg));
  Alcotest.(check bool) "node_count > 3" true (Sfg.node_count sfg > 3)

let test_duplicate_names_rejected () =
  (match
     Sfg.build "dup_out" (fun b ->
         Sfg.Builder.output b "o" Signal.vdd;
         Sfg.Builder.output b "o" Signal.gnd)
   with
  | exception Sfg.Sfg_error _ -> ()
  | _ -> Alcotest.fail "duplicate output accepted");
  (match
     Sfg.build "dup_in" (fun b ->
         ignore (Sfg.Builder.input b "i" s8);
         ignore (Sfg.Builder.input b "i" s8))
   with
  | exception Sfg.Sfg_error _ -> ()
  | _ -> Alcotest.fail "duplicate input accepted");
  let r = Signal.Reg.create clk "t_dup" s8 in
  match
    Sfg.build "dup_assign" (fun b ->
        Sfg.Builder.assign b r (Signal.consti s8 1);
        Sfg.Builder.assign b r (Signal.consti s8 2))
  with
  | exception Sfg.Sfg_error _ -> ()
  | _ -> Alcotest.fail "double assign accepted"

let test_assign_format_check () =
  let r = Signal.Reg.create clk "t_fmt" s8 in
  match
    Sfg.build "bad_fmt" (fun b ->
        Sfg.Builder.assign b r Signal.vdd (* 1-bit into 8-bit register *))
  with
  | exception Sfg.Sfg_error _ -> ()
  | _ -> Alcotest.fail "format mismatch accepted"

let test_checks () =
  let sfg =
    Sfg.build "dangling" (fun b ->
        ignore (Sfg.Builder.input b "unused" s8);
        Sfg.Builder.output b "const_out" (Signal.consti s8 1))
  in
  let issues = Sfg.check sfg in
  Alcotest.(check bool) "dangling reported" true
    (List.exists
       (function Sfg.Dangling_input "unused" -> true | _ -> false)
       issues);
  Alcotest.(check bool) "constant output not reported by default" false
    (List.exists (function Sfg.Dead_output _ -> true | _ -> false) issues);
  let issues = Sfg.check ~flag_constant_outputs:true sfg in
  Alcotest.(check bool) "constant output reported when asked" true
    (List.exists
       (function Sfg.Dead_output "const_out" -> true | _ -> false)
       issues);
  let clean, _ = simple_sfg () in
  Alcotest.(check int) "clean sfg" 0 (List.length (Sfg.check clean))

let test_output_deps () =
  let r = Signal.Reg.create clk "t_dep" s8 in
  let sfg =
    Sfg.build "deps" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "from_reg" Signal.(reg_q r +: consti s8 1);
        Sfg.Builder.output b "from_input" Signal.(x +: reg_q r))
  in
  let deps = Sfg.output_deps sfg in
  Alcotest.(check int) "reg-only output has no deps" 0
    (List.length (List.assoc "from_reg" deps));
  Alcotest.(check int) "input output has one dep" 1
    (List.length (List.assoc "from_input" deps));
  Alcotest.(check int) "assign deps empty" 0 (List.length (Sfg.assign_deps sfg))

let test_fire () =
  let sfg, acc = simple_sfg () in
  Signal.Reg.reset acc;
  let env = Signal.Env.create () in
  (match Sfg.inputs sfg with
  | [ i ] -> Signal.Env.bind env i (Fixed.of_int s8 7)
  | _ -> Alcotest.fail "one input expected");
  let out = Sfg.fire sfg env in
  Alcotest.(check int) "output" 7 (Fixed.to_int (List.assoc "sum" out));
  Alcotest.(check int) "reg not yet committed" 0
    (Fixed.to_int (Signal.Reg.value acc));
  Signal.Reg.commit acc;
  Alcotest.(check int) "committed" 7 (Fixed.to_int (Signal.Reg.value acc))

let test_fire_partial () =
  let r = Signal.Reg.create clk "t_fp" s8 ~init:(Fixed.of_int s8 3) in
  let sfg =
    Sfg.build "partial" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "early" Signal.(reg_q r +: consti s8 1);
        Sfg.Builder.output b "late" Signal.(x +: reg_q r);
        Sfg.Builder.assign_resized b r Signal.(x +: consti s8 0))
  in
  Signal.Reg.reset r;
  let env = Signal.Env.create () in
  (* No inputs bound: only the register-only output fires. *)
  let out, status = Sfg.fire_partial sfg env ~produced:(fun _ -> false) in
  Alcotest.(check bool) "partial" true (status = `Partial);
  Alcotest.(check int) "one early output" 1 (List.length out);
  Alcotest.(check int) "early value" 4 (Fixed.to_int (List.assoc "early" out));
  (* Bind the input; the rest completes without re-producing "early". *)
  (match Sfg.inputs sfg with
  | [ i ] -> Signal.Env.bind env i (Fixed.of_int s8 10)
  | _ -> assert false);
  let out2, status2 =
    Sfg.fire_partial sfg env ~produced:(fun p -> p = "early")
  in
  Alcotest.(check bool) "complete" true (status2 = `Complete);
  Alcotest.(check int) "one late output" 1 (List.length out2);
  Alcotest.(check int) "late value" 13 (Fixed.to_int (List.assoc "late" out2));
  Signal.Reg.commit r;
  Alcotest.(check int) "assign staged at completion" 10
    (Fixed.to_int (Signal.Reg.value r))

let test_nop () =
  let sfg = Sfg.nop "idle" in
  Alcotest.(check int) "no ports" 0
    (List.length (Sfg.inputs sfg) + List.length (Sfg.outputs sfg));
  let out = Sfg.fire sfg (Signal.Env.create ()) in
  Alcotest.(check int) "no tokens" 0 (List.length out)

let test_shared_port () =
  (* Two SFGs sharing one Input.t, as components do. *)
  let port = Signal.Input.create "shared" s8 in
  let a =
    Sfg.build "uses_a" (fun b ->
        let x = Sfg.Builder.input_port b port in
        Sfg.Builder.output b "o" (Signal.resize s8 x))
  in
  let b_sfg =
    Sfg.build "uses_b" (fun b ->
        let x = Sfg.Builder.input_port b port in
        Sfg.Builder.output b "o" (Signal.resize s8 (Signal.neg x)))
  in
  let env = Signal.Env.create () in
  Signal.Env.bind env port (Fixed.of_int s8 5);
  Alcotest.(check int) "a" 5 (Fixed.to_int (List.assoc "o" (Sfg.fire a env)));
  Alcotest.(check int) "b" (-5) (Fixed.to_int (List.assoc "o" (Sfg.fire b_sfg env)))

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_names_rejected;
    Alcotest.test_case "assign format check" `Quick test_assign_format_check;
    Alcotest.test_case "semantic checks" `Quick test_checks;
    Alcotest.test_case "output dependency analysis" `Quick test_output_deps;
    Alcotest.test_case "fire" `Quick test_fire;
    Alcotest.test_case "fire_partial" `Quick test_fire_partial;
    Alcotest.test_case "nop" `Quick test_nop;
    Alcotest.test_case "shared input port" `Quick test_shared_port;
  ]
