(* Exhaustive small-width verification: for every format up to 5 bits,
   every operand value and every resize mode, the three value
   representations agree — Fixed (quantized int64), Bitvector (naive
   bits) and Wordgen+Netlist (gates).  This is the strongest statement
   the reproduction makes about its arithmetic core. *)

let formats =
  List.concat_map
    (fun signedness ->
      List.concat_map
        (fun width ->
          List.map
            (fun frac -> Fixed.format signedness ~width ~frac)
            [ -1; 0; 2 ])
        [ 1; 2; 3; 4; 5 ])
    [ Fixed.Signed; Fixed.Unsigned ]

let all_values fmt =
  let lo = Int64.to_int (Fixed.min_mantissa fmt) in
  let hi = Int64.to_int (Fixed.max_mantissa fmt) in
  List.init (hi - lo + 1) (fun i -> Fixed.create fmt (Int64.of_int (lo + i)))

(* Fixed vs Bitvector, all pairs of all small formats (bounded subset of
   format pairs to keep runtime sane). *)
let test_fixed_vs_bitvector_binops () =
  let pairs =
    [ (List.nth formats 0, List.nth formats 3);
      (List.nth formats 4, List.nth formats 19);
      (List.nth formats 7, List.nth formats 7);
      (List.nth formats 10, List.nth formats 22);
      (List.nth formats 13, List.nth formats 28) ]
  in
  List.iter
    (fun (fa, fb) ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let check name fop bop =
                match fop a b with
                | exception Fixed.Format_error _ -> ()
                | expect ->
                  let got =
                    Bitvector.to_fixed
                      (bop (Bitvector.of_fixed a) (Bitvector.of_fixed b))
                  in
                  if not (Fixed.equal expect got) then
                    Alcotest.failf "%s(%s, %s): %s vs %s" name
                      (Fixed.to_string a) (Fixed.to_string b)
                      (Fixed.to_string expect) (Fixed.to_string got)
              in
              check "add" Fixed.add Bitvector.add;
              check "sub" Fixed.sub Bitvector.sub;
              check "mul" Fixed.mul Bitvector.mul;
              check "and" Fixed.logand Bitvector.logand;
              check "xor" Fixed.logxor Bitvector.logxor;
              check "eq" Fixed.eq Bitvector.eq;
              check "lt" Fixed.lt Bitvector.lt)
            (all_values fb))
        (all_values fa))
    pairs

(* Exhaustive resize: all values of a handful of source formats into all
   small destination formats under every rounding/overflow mode. *)
let test_exhaustive_resize () =
  let sources =
    [ Fixed.signed ~width:4 ~frac:2; Fixed.unsigned ~width:4 ~frac:0;
      Fixed.signed ~width:5 ~frac:(-1) ]
  in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          List.iter
            (fun v ->
              List.iter
                (fun round ->
                  List.iter
                    (fun overflow ->
                      match Fixed.resize ~round ~overflow dst v with
                      | exception _ -> ()
                      | expect ->
                        let got =
                          Bitvector.to_fixed
                            (Bitvector.resize ~round ~overflow dst
                               (Bitvector.of_fixed v))
                        in
                        if not (Fixed.equal expect got) then
                          Alcotest.failf "resize %s %s->%s"
                            (Fixed.to_string v)
                            (Fixed.format_to_string src)
                            (Fixed.format_to_string dst))
                    [ Fixed.Wrap; Fixed.Saturate ])
                [ Fixed.Truncate; Fixed.Round_nearest; Fixed.Round_even ])
            (all_values src))
        formats)
    sources

(* Gates vs Fixed, exhaustive for one representative signed pair. *)
let test_exhaustive_gates () =
  let fa = Fixed.signed ~width:4 ~frac:1 in
  let fb = Fixed.unsigned ~width:3 ~frac:2 in
  let ops =
    [ ("add", Fixed.add, Wordgen.add); ("sub", Fixed.sub, Wordgen.sub);
      ("mul", Fixed.mul, Wordgen.mul) ]
  in
  List.iter
    (fun (name, fop, wop) ->
      (* Build the circuit once; sweep all operand values through it. *)
      let nl = Netlist.create name in
      let ba = Netlist.input_bus nl "a" fa.Fixed.width in
      let bb = Netlist.input_bus nl "b" fb.Fixed.width in
      Netlist.output_bus nl "out" (wop nl ~fa ~fb ba bb);
      let sim = Netlist.Sim.create nl in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let expect = fop a b in
              Netlist.Sim.set_input sim "a" (Fixed.mantissa a);
              Netlist.Sim.set_input sim "b" (Fixed.mantissa b);
              Netlist.Sim.settle sim;
              let signed = (Fixed.fmt expect).Fixed.signedness = Fixed.Signed in
              let got = Netlist.Sim.get_output sim ~signed "out" in
              if got <> Fixed.mantissa expect then
                Alcotest.failf "%s(%s, %s) gates" name (Fixed.to_string a)
                  (Fixed.to_string b))
            (all_values fb))
        (all_values fa))
    ops

(* Compiled mantissa helpers vs Fixed, exhaustively (the closure
   specializations used on the compiled-simulation hot path). *)
let test_compiled_resize_helpers () =
  (* Reached through a one-node system per mode, exhaustive over inputs. *)
  let src = Fixed.signed ~width:5 ~frac:3 in
  List.iter
    (fun dst ->
      List.iter
        (fun round ->
          List.iter
            (fun overflow ->
              let clk = Clock.default in
              ignore clk;
              let port = Signal.Input.create "x" src in
              let sfg =
                Sfg.build "rz" (fun b ->
                    ignore (Sfg.Builder.input_port b port);
                    Sfg.Builder.output b "y"
                      (Signal.resize ~round ~overflow dst (Signal.input port)))
              in
              let fsm = Fsm.create "rz_ctl" in
              let s0 = Fsm.initial fsm "s0" in
              Fsm.(s0 |-- always |+ sfg |-> s0);
              let values = all_values src in
              let n = List.length values in
              let sys = Cycle_system.create "rz_sys" in
              let c = Cycle_system.add_timed sys "c" fsm in
              let stim =
                Cycle_system.add_input sys "x_in" src (fun cyc ->
                    Some (List.nth values (cyc mod n)))
              in
              let p = Cycle_system.add_output sys "y_out" in
              ignore (Cycle_system.connect sys (stim, "out") [ (c, "x") ]);
              ignore (Cycle_system.connect sys (c, "y") [ (p, "in") ]);
              let interp = Flow.simulate sys ~cycles:n in
              let compiled = Flow.simulate ~engine:"compiled" sys ~cycles:n in
              let hy = List.assoc "y_out" interp in
              let hc = List.assoc "y_out" compiled in
              List.iter2
                (fun (_, v1) (_, v2) ->
                  if not (Fixed.equal v1 v2) then
                    Alcotest.failf "compiled resize %s -> %s"
                      (Fixed.format_to_string src)
                      (Fixed.format_to_string dst))
                hy hc)
            [ Fixed.Wrap; Fixed.Saturate ])
        [ Fixed.Truncate; Fixed.Round_nearest; Fixed.Round_even ])
    [ Fixed.signed ~width:3 ~frac:1; Fixed.unsigned ~width:4 ~frac:0;
      Fixed.signed ~width:6 ~frac:5 ]

let suite =
  [
    Alcotest.test_case "fixed == bitvector (exhaustive pairs)" `Slow
      test_fixed_vs_bitvector_binops;
    Alcotest.test_case "resize exhaustive (all modes)" `Slow
      test_exhaustive_resize;
    Alcotest.test_case "gates exhaustive (one format pair)" `Slow
      test_exhaustive_gates;
    Alcotest.test_case "compiled resize helpers exhaustive" `Slow
      test_compiled_resize_helpers;
  ]
