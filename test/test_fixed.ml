(* Unit and property tests for the fixed-point substrate. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let s ~w ~f = Fixed.signed ~width:w ~frac:f
let u ~w ~f = Fixed.unsigned ~width:w ~frac:f

let test_format_construction () =
  let f = s ~w:8 ~f:4 in
  check_int "width" 8 f.Fixed.width;
  check_int "frac" 4 f.Fixed.frac;
  check_bool "signed" true (f.Fixed.signedness = Fixed.Signed);
  Alcotest.check_raises "zero width" (Fixed.Format_error "format: width 0 < 1")
    (fun () -> ignore (Fixed.signed ~width:0 ~frac:0));
  (match Fixed.format Fixed.Signed ~width:100 ~frac:0 with
  | exception Fixed.Format_error _ -> ()
  | _ -> Alcotest.fail "width 100 accepted");
  check_bool "equal_format" true (Fixed.equal_format (s ~w:4 ~f:2) (s ~w:4 ~f:2));
  check_bool "inequal signedness" false
    (Fixed.equal_format (s ~w:4 ~f:2) (u ~w:4 ~f:2))

let test_mantissa_ranges () =
  check_i64 "s8 min" (-128L) (Fixed.min_mantissa (s ~w:8 ~f:0));
  check_i64 "s8 max" 127L (Fixed.max_mantissa (s ~w:8 ~f:0));
  check_i64 "u8 min" 0L (Fixed.min_mantissa (u ~w:8 ~f:0));
  check_i64 "u8 max" 255L (Fixed.max_mantissa (u ~w:8 ~f:0));
  check_i64 "u1 max" 1L (Fixed.max_mantissa Fixed.bit_format)

let test_create_bounds () =
  ignore (Fixed.create (s ~w:4 ~f:0) (-8L));
  ignore (Fixed.create (s ~w:4 ~f:0) 7L);
  (match Fixed.create (s ~w:4 ~f:0) 8L with
  | exception Fixed.Overflow _ -> ()
  | _ -> Alcotest.fail "8 fits s4?");
  (match Fixed.create (u ~w:4 ~f:0) (-1L) with
  | exception Fixed.Overflow _ -> ()
  | _ -> Alcotest.fail "-1 fits u4?")

let test_float_roundtrip () =
  let fmt = s ~w:10 ~f:6 in
  let v = Fixed.of_float fmt 1.75 in
  Alcotest.(check (float 1e-9)) "1.75" 1.75 (Fixed.to_float v);
  let v = Fixed.of_float fmt (-0.015625) in
  Alcotest.(check (float 1e-9)) "-1/64" (-0.015625) (Fixed.to_float v);
  (* saturation *)
  let v = Fixed.of_float fmt 100.0 in
  check_i64 "saturated to max" (Fixed.max_mantissa fmt) (Fixed.mantissa v);
  let v = Fixed.of_float fmt (-100.0) in
  check_i64 "saturated to min" (Fixed.min_mantissa fmt) (Fixed.mantissa v)

let test_of_float_rounding () =
  let fmt = s ~w:8 ~f:2 in
  (* 0.3 * 4 = 1.2 -> nearest 1 *)
  check_i64 "round nearest" 1L (Fixed.mantissa (Fixed.of_float fmt 0.3));
  (* 0.375 * 4 = 1.5 -> half away = 2; half-even = 2 (1 odd) *)
  check_i64 "half up" 2L
    (Fixed.mantissa (Fixed.of_float ~round:Fixed.Round_nearest fmt 0.375));
  check_i64 "truncate" 1L
    (Fixed.mantissa (Fixed.of_float ~round:Fixed.Truncate fmt 0.49));
  (* 0.625 * 4 = 2.5 -> even = 2 *)
  check_i64 "half even" 2L
    (Fixed.mantissa (Fixed.of_float ~round:Fixed.Round_even fmt 0.625))

let test_int_conversions () =
  let fmt = s ~w:10 ~f:3 in
  check_int "of/to int" 12 (Fixed.to_int (Fixed.of_int fmt 12));
  check_int "negative" (-12) (Fixed.to_int (Fixed.of_int fmt (-12)));
  (* to_int truncates toward zero *)
  let v = Fixed.of_float fmt (-1.5) in
  check_int "trunc toward zero" (-1) (Fixed.to_int v);
  let v = Fixed.of_float fmt 1.875 in
  check_int "trunc pos" 1 (Fixed.to_int v)

let test_add_sub_exact () =
  let a = Fixed.of_float (s ~w:6 ~f:2) 3.25 in
  let b = Fixed.of_float (s ~w:8 ~f:4) (-1.0625) in
  let sum = Fixed.add a b in
  Alcotest.(check (float 1e-9)) "sum" 2.1875 (Fixed.to_float sum);
  let diff = Fixed.sub a b in
  Alcotest.(check (float 1e-9)) "diff" 4.3125 (Fixed.to_float diff);
  (* result formats *)
  check_int "sum frac" 4 (Fixed.fmt sum).Fixed.frac

let test_mul_exact () =
  let a = Fixed.of_float (s ~w:6 ~f:2) (-2.75) in
  let b = Fixed.of_float (u ~w:5 ~f:3) 1.625 in
  let p = Fixed.mul a b in
  Alcotest.(check (float 1e-9)) "product" (-4.46875) (Fixed.to_float p);
  check_int "product frac" 5 (Fixed.fmt p).Fixed.frac;
  check_int "product width" 11 (Fixed.fmt p).Fixed.width

let test_neg_abs () =
  let a = Fixed.of_float (s ~w:6 ~f:2) (-7.75) in
  Alcotest.(check (float 1e-9)) "neg" 7.75 (Fixed.to_float (Fixed.neg a));
  Alcotest.(check (float 1e-9)) "abs" 7.75 (Fixed.to_float (Fixed.abs a));
  (* negating the minimum needs the widened format *)
  let m = Fixed.create (s ~w:4 ~f:0) (-8L) in
  check_i64 "neg min" 8L (Fixed.mantissa (Fixed.neg m))

let test_compare () =
  let a = Fixed.of_float (s ~w:8 ~f:4) 1.5 in
  let b = Fixed.of_float (u ~w:10 ~f:2) 1.5 in
  check_int "equal across formats" 0 (Fixed.compare_value a b);
  let c = Fixed.of_float (s ~w:8 ~f:4) (-1.5) in
  check_bool "lt" true (Fixed.compare_value c a < 0);
  check_bool "fixed eq op" true (Fixed.is_true (Fixed.eq a b));
  check_bool "fixed lt op" true (Fixed.is_true (Fixed.lt c a));
  check_bool "le refl" true (Fixed.is_true (Fixed.le a b));
  check_bool "gt" true (Fixed.is_true (Fixed.gt a c));
  check_bool "ge" true (Fixed.is_true (Fixed.ge a b));
  check_bool "ne" false (Fixed.is_true (Fixed.ne a b))

let test_logical () =
  let a = Fixed.of_int (u ~w:8 ~f:0) 0b1100 in
  let b = Fixed.of_int (u ~w:8 ~f:0) 0b1010 in
  check_i64 "and" 0b1000L (Fixed.mantissa (Fixed.logand a b));
  check_i64 "or" 0b1110L (Fixed.mantissa (Fixed.logor a b));
  check_i64 "xor" 0b0110L (Fixed.mantissa (Fixed.logxor a b));
  check_i64 "not" 0b11110011L (Fixed.mantissa (Fixed.lognot a))

let test_shifts () =
  let a = Fixed.of_int (u ~w:8 ~f:0) 5 in
  let l = Fixed.shift_left a 2 in
  Alcotest.(check (float 1e-9)) "shl value" 20.0 (Fixed.to_float l);
  check_i64 "shl mantissa unchanged" 5L (Fixed.mantissa l);
  check_int "shl frac" (-2) (Fixed.fmt l).Fixed.frac;
  let r = Fixed.shift_right a 2 in
  Alcotest.(check (float 1e-9)) "shr value" 1.25 (Fixed.to_float r);
  check_int "shr frac" 2 (Fixed.fmt r).Fixed.frac

let test_resize_truncate_wrap () =
  let v = Fixed.of_float (s ~w:10 ~f:4) 5.8125 in
  (* to s6.1: 5.8125 * 2 = 11.625 -> floor 11 -> 5.5; fits s6 *)
  let r = Fixed.resize (s ~w:6 ~f:1) v in
  Alcotest.(check (float 1e-9)) "trunc" 5.5 (Fixed.to_float r);
  (* wrap: 100 into s6.0 -> 100 - 128 = -28 *)
  let v = Fixed.of_int (s ~w:10 ~f:0) 100 in
  check_i64 "wrap" (-28L) (Fixed.mantissa (Fixed.resize (s ~w:6 ~f:0) v))

let test_resize_saturate () =
  let v = Fixed.of_int (s ~w:10 ~f:0) 100 in
  check_i64 "sat high" 31L
    (Fixed.mantissa (Fixed.resize ~overflow:Fixed.Saturate (s ~w:6 ~f:0) v));
  let v = Fixed.of_int (s ~w:10 ~f:0) (-100) in
  check_i64 "sat low" (-32L)
    (Fixed.mantissa (Fixed.resize ~overflow:Fixed.Saturate (s ~w:6 ~f:0) v));
  (* unsigned clamps negatives to zero *)
  check_i64 "sat unsigned" 0L
    (Fixed.mantissa (Fixed.resize ~overflow:Fixed.Saturate (u ~w:6 ~f:0) v))

let test_resize_rounding_modes () =
  let v = Fixed.create (s ~w:10 ~f:4) 0b10110L (* 1.375 *) in
  let f = s ~w:8 ~f:1 in
  (* 1.375 * 2 = 2.75: floor 2, nearest 3, even: rem>half -> 3 *)
  check_i64 "truncate" 2L (Fixed.mantissa (Fixed.resize ~round:Fixed.Truncate f v));
  check_i64 "nearest" 3L
    (Fixed.mantissa (Fixed.resize ~round:Fixed.Round_nearest f v));
  check_i64 "even >half" 3L
    (Fixed.mantissa (Fixed.resize ~round:Fixed.Round_even f v));
  (* exactly half: 1.25 * 2 = 2.5 -> nearest 3, even 2 *)
  let v = Fixed.of_float (s ~w:10 ~f:4) 1.25 in
  check_i64 "nearest half" 3L
    (Fixed.mantissa (Fixed.resize ~round:Fixed.Round_nearest f v));
  check_i64 "even half" 2L
    (Fixed.mantissa (Fixed.resize ~round:Fixed.Round_even f v));
  (* negative truncation rounds toward -inf *)
  let v = Fixed.of_float (s ~w:10 ~f:4) (-1.0625) in
  check_i64 "trunc negative" (-3L)
    (Fixed.mantissa (Fixed.resize ~round:Fixed.Truncate f v))

let test_bits_roundtrip () =
  let v = Fixed.create (s ~w:6 ~f:2) (-13L) in
  let bits = Fixed.to_bits v in
  check_int "bit length" 6 (String.length bits);
  Alcotest.(check string) "pattern" "110011" bits;
  check_bool "roundtrip" true (Fixed.equal v (Fixed.of_bits (s ~w:6 ~f:2) bits))

let test_bool_bits () =
  check_bool "of_bool true" true (Fixed.is_true (Fixed.of_bool true));
  check_bool "of_bool false" false (Fixed.is_true (Fixed.of_bool false));
  check_i64 "one" 16L (Fixed.mantissa (Fixed.one (s ~w:8 ~f:4)));
  check_i64 "zero" 0L (Fixed.mantissa (Fixed.zero (s ~w:8 ~f:4)))

(* --- properties ---------------------------------------------------------- *)

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let properties =
  [
    prop "add commutative" 500 Gen.pair_arb (fun (a, b) ->
        Fixed.compare_value (Fixed.add a b) (Fixed.add b a) = 0);
    prop "add is exact vs float" 500 Gen.pair_arb (fun (a, b) ->
        abs_float
          (Fixed.to_float (Fixed.add a b) -. (Fixed.to_float a +. Fixed.to_float b))
        < 1e-9);
    prop "mul is exact vs float" 500 Gen.pair_arb (fun (a, b) ->
        abs_float
          (Fixed.to_float (Fixed.mul a b) -. (Fixed.to_float a *. Fixed.to_float b))
        < 1e-9);
    prop "sub = add neg" 500 Gen.pair_arb (fun (a, b) ->
        Fixed.compare_value (Fixed.sub a b) (Fixed.add a (Fixed.neg b)) = 0);
    prop "abs non-negative" 500 Gen.value_arb (fun v ->
        Fixed.compare_value (Fixed.abs v) (Fixed.zero (Fixed.fmt v)) >= 0);
    prop "resize to same format is identity" 500 Gen.value_arb (fun v ->
        Fixed.equal v (Fixed.resize (Fixed.fmt v) v));
    prop "saturating resize stays in range" 500
      (QCheck.pair Gen.value_arb (QCheck.make Gen.format_gen))
      (fun (v, fmt) ->
        let r = Fixed.resize ~overflow:Fixed.Saturate fmt v in
        Fixed.mantissa r >= Fixed.min_mantissa fmt
        && Fixed.mantissa r <= Fixed.max_mantissa fmt);
    prop "widening resize preserves value" 500 Gen.value_arb (fun v ->
        let f = Fixed.fmt v in
        match
          Fixed.format f.Fixed.signedness ~width:(f.Fixed.width + 4)
            ~frac:(f.Fixed.frac + 2)
        with
        | wider ->
          Fixed.compare_value v (Fixed.resize wider v) = 0
        | exception Fixed.Format_error _ -> true);
    prop "to_bits/of_bits roundtrip" 500 Gen.value_arb (fun v ->
        Fixed.equal v (Fixed.of_bits (Fixed.fmt v) (Fixed.to_bits v)));
    prop "comparisons agree with float" 500 Gen.pair_arb (fun (a, b) ->
        let ff = compare (Fixed.to_float a) (Fixed.to_float b) in
        let xx = Fixed.compare_value a b in
        (ff = 0) = (xx = 0) && (ff < 0) = (xx < 0));
    prop "logical ops idempotent" 300 Gen.value_arb (fun v ->
        Fixed.compare_value (Fixed.logand v v) v = 0
        && Fixed.compare_value (Fixed.logor v v) v = 0);
    prop "lognot involutive" 300 Gen.value_arb (fun v ->
        Fixed.equal (Fixed.lognot (Fixed.lognot v)) v);
    prop "shift roundtrip" 300 Gen.value_arb (fun v ->
        Fixed.compare_value (Fixed.shift_right (Fixed.shift_left v 3) 3) v = 0);
  ]

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t) properties
  @ [
      Alcotest.test_case "format construction" `Quick test_format_construction;
      Alcotest.test_case "mantissa ranges" `Quick test_mantissa_ranges;
      Alcotest.test_case "create bounds" `Quick test_create_bounds;
      Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip;
      Alcotest.test_case "of_float rounding" `Quick test_of_float_rounding;
      Alcotest.test_case "int conversions" `Quick test_int_conversions;
      Alcotest.test_case "add/sub exact" `Quick test_add_sub_exact;
      Alcotest.test_case "mul exact" `Quick test_mul_exact;
      Alcotest.test_case "neg/abs" `Quick test_neg_abs;
      Alcotest.test_case "comparisons" `Quick test_compare;
      Alcotest.test_case "logical ops" `Quick test_logical;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "resize truncate/wrap" `Quick test_resize_truncate_wrap;
      Alcotest.test_case "resize saturate" `Quick test_resize_saturate;
      Alcotest.test_case "resize rounding modes" `Quick test_resize_rounding_modes;
      Alcotest.test_case "bit strings" `Quick test_bits_roundtrip;
      Alcotest.test_case "bool and constants" `Quick test_bool_bits;
    ]
