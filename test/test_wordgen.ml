(* Differential tests: every word-level module generator is bit-exact
   against the corresponding Fixed operation (the property the
   generated-test-bench verification flow relies on). *)

let rng = Random.State.make [| 4242 |]

let random_format () =
  let signedness = if Random.State.bool rng then Fixed.Signed else Fixed.Unsigned in
  let width = 1 + Random.State.int rng 12 in
  let frac = Random.State.int rng 8 - 3 in
  Fixed.format signedness ~width ~frac

let random_value fmt =
  let lo = Fixed.min_mantissa fmt and hi = Fixed.max_mantissa fmt in
  let range = Int64.add (Int64.sub hi lo) 1L in
  Fixed.create fmt (Int64.add lo (Random.State.int64 rng range))

let run_binop wg_op a b =
  let fa = Fixed.fmt a and fb = Fixed.fmt b in
  let nl = Netlist.create "t" in
  let ba = Netlist.input_bus nl "a" fa.Fixed.width in
  let bb = Netlist.input_bus nl "b" fb.Fixed.width in
  let out = wg_op nl ~fa ~fb ba bb in
  Netlist.output_bus nl "out" out;
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "a" (Fixed.mantissa a);
  Netlist.Sim.set_input sim "b" (Fixed.mantissa b);
  Netlist.Sim.settle sim;
  sim

let check_binop name fixed_op wg_op iterations =
  for _ = 1 to iterations do
    let a = random_value (random_format ()) in
    let b = random_value (random_format ()) in
    match fixed_op a b with
    | exception Fixed.Format_error _ -> ()
    | expect ->
      let sim = run_binop wg_op a b in
      let signed = (Fixed.fmt expect).Fixed.signedness = Fixed.Signed in
      let got = Netlist.Sim.get_output sim ~signed "out" in
      if got <> Fixed.mantissa expect then
        Alcotest.failf "%s: %s op %s expect %Ld got %Ld" name
          (Fixed.to_string a) (Fixed.to_string b) (Fixed.mantissa expect) got
  done

let check_cmp name fixed_op wg_op iterations =
  for _ = 1 to iterations do
    let a = random_value (random_format ()) in
    let b = random_value (random_format ()) in
    let expect = Fixed.mantissa (fixed_op a b) in
    let sim = run_binop (fun nl ~fa ~fb x y -> [| wg_op nl ~fa ~fb x y |]) a b in
    let got = Netlist.Sim.get_output sim ~signed:false "out" in
    if got <> expect then
      Alcotest.failf "%s: %s vs %s expect %Ld got %Ld" name (Fixed.to_string a)
        (Fixed.to_string b) expect got
  done

let check_unop name fixed_op wg_op iterations =
  for _ = 1 to iterations do
    let a = random_value (random_format ()) in
    let fa = Fixed.fmt a in
    let expect = fixed_op a in
    let nl = Netlist.create "t" in
    let ba = Netlist.input_bus nl "a" fa.Fixed.width in
    Netlist.output_bus nl "out" (wg_op nl ~fa ba);
    let sim = Netlist.Sim.create nl in
    Netlist.Sim.set_input sim "a" (Fixed.mantissa a);
    Netlist.Sim.settle sim;
    let signed = (Fixed.fmt expect).Fixed.signedness = Fixed.Signed in
    let got = Netlist.Sim.get_output sim ~signed "out" in
    if got <> Fixed.mantissa expect then
      Alcotest.failf "%s: %s expect %Ld got %Ld" name (Fixed.to_string a)
        (Fixed.mantissa expect) got
  done

let test_add () = check_binop "add" Fixed.add Wordgen.add 300
let test_sub () = check_binop "sub" Fixed.sub Wordgen.sub 300
let test_mul () = check_binop "mul" Fixed.mul Wordgen.mul 200

let test_logic () =
  check_binop "and" Fixed.logand
    (fun nl ~fa ~fb a b -> Wordgen.logic_op nl Netlist.And ~fa ~fb a b)
    200;
  check_binop "or" Fixed.logor
    (fun nl ~fa ~fb a b -> Wordgen.logic_op nl Netlist.Or ~fa ~fb a b)
    200;
  check_binop "xor" Fixed.logxor
    (fun nl ~fa ~fb a b -> Wordgen.logic_op nl Netlist.Xor ~fa ~fb a b)
    200

let test_cmp () =
  check_cmp "eq" Fixed.eq Wordgen.eq 200;
  check_cmp "lt" Fixed.lt Wordgen.lt 200;
  check_cmp "le" Fixed.le Wordgen.le 200

let test_neg_abs () =
  check_unop "neg" Fixed.neg Wordgen.neg 200;
  check_unop "abs" Fixed.abs Wordgen.abs_ 200

let test_resize () =
  for _ = 1 to 1500 do
    let v = random_value (random_format ()) in
    let src = Fixed.fmt v in
    let dst = random_format () in
    let round =
      match Random.State.int rng 3 with
      | 0 -> Fixed.Truncate
      | 1 -> Fixed.Round_nearest
      | _ -> Fixed.Round_even
    in
    let overflow = if Random.State.bool rng then Fixed.Wrap else Fixed.Saturate in
    match Fixed.resize ~round ~overflow dst v with
    | exception _ -> ()
    | expect -> (
      let nl = Netlist.create "t" in
      let ba = Netlist.input_bus nl "a" src.Fixed.width in
      match Wordgen.resize nl ~round ~overflow ~src ~dst ba with
      | exception Fixed.Format_error _ -> ()
      | out ->
        Netlist.output_bus nl "out" out;
        let sim = Netlist.Sim.create nl in
        Netlist.Sim.set_input sim "a" (Fixed.mantissa v);
        Netlist.Sim.settle sim;
        let signed = dst.Fixed.signedness = Fixed.Signed in
        let got = Netlist.Sim.get_output sim ~signed "out" in
        if got <> Fixed.mantissa expect then
          Alcotest.failf "resize %s %s->%s expect %Ld got %Ld"
            (Fixed.to_string v)
            (Fixed.format_to_string src)
            (Fixed.format_to_string dst)
            (Fixed.mantissa expect) got)
  done

let test_mux2 () =
  for _ = 1 to 200 do
    let a = random_value (random_format ()) in
    let b = random_value (random_format ()) in
    let fa = Fixed.fmt a and fb = Fixed.fmt b in
    let fr = Fixed.logic_format fa fb in
    let sel = Random.State.bool rng in
    let nl = Netlist.create "t" in
    let ba = Netlist.input_bus nl "a" fa.Fixed.width in
    let bb = Netlist.input_bus nl "b" fb.Fixed.width in
    let bs = Netlist.input_bus nl "s" 1 in
    Netlist.output_bus nl "out" (Wordgen.mux2 nl ~fa ~fb ~fr bs.(0) ba bb);
    let sim = Netlist.Sim.create nl in
    Netlist.Sim.set_input sim "a" (Fixed.mantissa a);
    Netlist.Sim.set_input sim "b" (Fixed.mantissa b);
    Netlist.Sim.set_input sim "s" (if sel then 1L else 0L);
    Netlist.Sim.settle sim;
    let expect =
      Fixed.resize ~round:Fixed.Truncate ~overflow:Fixed.Wrap fr
        (if sel then a else b)
    in
    let signed = fr.Fixed.signedness = Fixed.Signed in
    let got = Netlist.Sim.get_output sim ~signed "out" in
    if got <> Fixed.mantissa expect then Alcotest.fail "mux2 mismatch"
  done

let test_select_one_hot () =
  (* AND-OR selection: exactly the selected bus, zero when none. *)
  let nl = Netlist.create "sel" in
  let s0 = Netlist.input_bus nl "s0" 1 and s1 = Netlist.input_bus nl "s1" 1 in
  let a = Netlist.input_bus nl "a" 4 and b = Netlist.input_bus nl "b" 4 in
  Netlist.output_bus nl "o"
    (Wordgen.select nl [ (s0.(0), a); (s1.(0), b) ] ~width:4);
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "a" 5L;
  Netlist.Sim.set_input sim "b" 10L;
  Netlist.Sim.set_input sim "s0" 1L;
  Netlist.Sim.set_input sim "s1" 0L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "selects a" 5L (Netlist.Sim.get_output sim ~signed:false "o");
  Netlist.Sim.set_input sim "s0" 0L;
  Netlist.Sim.set_input sim "s1" 1L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "selects b" 10L (Netlist.Sim.get_output sim ~signed:false "o");
  Netlist.Sim.set_input sim "s1" 0L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "none -> zero" 0L
    (Netlist.Sim.get_output sim ~signed:false "o")

let suite =
  [
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "sub" `Quick test_sub;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "logic ops" `Quick test_logic;
    Alcotest.test_case "comparisons" `Quick test_cmp;
    Alcotest.test_case "neg/abs" `Quick test_neg_abs;
    Alcotest.test_case "resize (all modes)" `Quick test_resize;
    Alcotest.test_case "mux2" `Quick test_mux2;
    Alcotest.test_case "one-hot select" `Quick test_select_one_hot;
  ]
