(* Tests for signals, expressions and evaluation. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let s84 = Fixed.signed ~width:8 ~frac:4
let u4 = Fixed.unsigned ~width:4 ~frac:0
let clk = Clock.default
let fx = Fixed.of_float

let eval_closed e = Signal.eval (Signal.Env.create ()) e

let test_constants () =
  let c = Signal.constf s84 1.5 in
  Alcotest.(check (float 1e-9)) "constf" 1.5 (Fixed.to_float (eval_closed c));
  let c = Signal.consti s8 (-42) in
  Alcotest.(check int) "consti" (-42) (Fixed.to_int (eval_closed c));
  Alcotest.(check bool) "vdd" true (Fixed.is_true (eval_closed Signal.vdd));
  Alcotest.(check bool) "gnd" false (Fixed.is_true (eval_closed Signal.gnd))

let test_operators_formats () =
  let a = Signal.constf s84 1.0 and b = Signal.constf s84 1.0 in
  Alcotest.(check int) "add widens" 9 (Signal.fmt Signal.(a +: b)).Fixed.width;
  Alcotest.(check int) "mul widens" 16 (Signal.fmt Signal.(a *: b)).Fixed.width;
  Alcotest.(check int) "eq is a bit" 1 (Signal.fmt Signal.(a ==: b)).Fixed.width;
  Alcotest.(check int) "neg widens" 9 (Signal.fmt (Signal.neg a)).Fixed.width

let test_eval_arithmetic () =
  let a = Signal.constf s84 2.5 and b = Signal.constf s84 (-1.25) in
  let check name expect e =
    Alcotest.(check (float 1e-9)) name expect (Fixed.to_float (eval_closed e))
  in
  check "add" 1.25 Signal.(a +: b);
  check "sub" 3.75 Signal.(a -: b);
  check "mul" (-3.125) Signal.(a *: b);
  check "neg" (-2.5) (Signal.neg a);
  check "abs" 1.25 (Signal.abs_ b);
  Alcotest.(check bool) "lt" true (Fixed.is_true (eval_closed Signal.(b <: a)));
  Alcotest.(check bool) "ge" true (Fixed.is_true (eval_closed Signal.(a >=: b)));
  Alcotest.(check bool) "ne" true (Fixed.is_true (eval_closed Signal.(a <>: b)))

let test_mux () =
  let a = Signal.consti s8 10 and b = Signal.consti s8 20 in
  let m1 = Signal.mux2 Signal.vdd a b and m0 = Signal.mux2 Signal.gnd a b in
  Alcotest.(check int) "mux sel=1" 10 (Fixed.to_int (eval_closed m1));
  Alcotest.(check int) "mux sel=0" 20 (Fixed.to_int (eval_closed m0));
  (* wide select rejected *)
  (match Signal.mux2 (Signal.consti s8 1) a b with
  | exception Signal.Signal_error _ -> ()
  | _ -> Alcotest.fail "wide select accepted")

let test_mux_format_covering () =
  (* Branches of different formats: value must be preserved for both. *)
  let a = Signal.constf (Fixed.signed ~width:6 ~frac:2) 3.25 in
  let b = Signal.constf (Fixed.unsigned ~width:10 ~frac:4) 12.0625 in
  let m = Signal.mux2 Signal.vdd a b in
  Alcotest.(check (float 1e-9)) "a preserved" 3.25 (Fixed.to_float (eval_closed m));
  let m = Signal.mux2 Signal.gnd a b in
  Alcotest.(check (float 1e-9)) "b preserved" 12.0625
    (Fixed.to_float (eval_closed m))

let test_registers () =
  let r = Signal.Reg.create clk "r" s8 ~init:(Fixed.of_int s8 5) in
  Alcotest.(check int) "initial" 5 (Fixed.to_int (Signal.Reg.value r));
  Signal.Reg.set_next r (Fixed.of_int s8 9);
  Alcotest.(check int) "next not visible" 5 (Fixed.to_int (Signal.Reg.value r));
  Signal.Reg.commit r;
  Alcotest.(check int) "committed" 9 (Fixed.to_int (Signal.Reg.value r));
  Signal.Reg.commit r;
  Alcotest.(check int) "no staging, no change" 9 (Fixed.to_int (Signal.Reg.value r));
  Signal.Reg.reset r;
  Alcotest.(check int) "reset" 5 (Fixed.to_int (Signal.Reg.value r));
  (* reading through an expression *)
  let e = Signal.(reg_q r +: consti s8 1) in
  Alcotest.(check int) "reg_q read" 6 (Fixed.to_int (eval_closed e))

let test_reg_init_format_mismatch () =
  match Signal.Reg.create clk "bad" s8 ~init:(Fixed.of_int u4 1) with
  | exception Signal.Signal_error _ -> ()
  | _ -> Alcotest.fail "mismatched init accepted"

let test_inputs_env () =
  let i = Signal.Input.create "x" s8 in
  let e = Signal.(input i *: consti s8 2) in
  let env = Signal.Env.create () in
  (match Signal.eval env e with
  | exception Signal.Signal_error _ -> ()
  | _ -> Alcotest.fail "unbound input evaluated");
  Signal.Env.bind env i (Fixed.of_int s8 21);
  Alcotest.(check int) "bound" 42 (Fixed.to_int (Signal.eval env e));
  Alcotest.(check bool) "is_bound" true (Signal.Env.is_bound env i)

let test_rom () =
  let contents = Array.init 8 (fun i -> Fixed.of_int s8 (i * 3)) in
  let rom = Signal.Rom.create "tbl" s8 contents in
  Alcotest.(check int) "size" 8 (Signal.Rom.size rom);
  let idx = Signal.consti u4 5 in
  Alcotest.(check int) "read" 15 (Fixed.to_int (eval_closed (Signal.rom rom idx)));
  (* modulo wrap *)
  let idx = Signal.consti u4 11 in
  Alcotest.(check int) "wrap" 9 (Fixed.to_int (eval_closed (Signal.rom rom idx)));
  (* signed index rejected *)
  (match Signal.rom rom (Signal.consti s8 1) with
  | exception Signal.Signal_error _ -> ()
  | _ -> Alcotest.fail "signed index accepted")

let test_shift_nodes () =
  let v = Signal.consti (Fixed.unsigned ~width:8 ~frac:0) 12 in
  let l = Signal.shift_left v 2 in
  Alcotest.(check (float 1e-9)) "shl" 48.0 (Fixed.to_float (eval_closed l));
  let r = Signal.shift_right v 2 in
  Alcotest.(check (float 1e-9)) "shr" 3.0 (Fixed.to_float (eval_closed r));
  (* the bit-extraction idiom *)
  let bit_i i =
    Signal.resize Fixed.bit_format (Signal.shift_right v i)
  in
  Alcotest.(check bool) "bit2" true (Fixed.is_true (eval_closed (bit_i 2)));
  Alcotest.(check bool) "bit0" false (Fixed.is_true (eval_closed (bit_i 0)));
  ()

let test_dag_analysis () =
  let i1 = Signal.Input.create "a" s8 and i2 = Signal.Input.create "b" s8 in
  let r = Signal.Reg.create clk "reg" s8 in
  let shared = Signal.(input i1 +: reg_q r) in
  let e = Signal.(shared *: shared +: input i2) in
  let deps = Signal.input_deps e in
  Alcotest.(check int) "two input deps" 2 (List.length deps);
  Alcotest.(check int) "one reg read" 1 (List.length (Signal.regs_read e));
  (* node_count counts shared nodes once: inputs(2) + reg_q + add +
     mul + outer add = 6 *)
  Alcotest.(check int) "node count" 6 (Signal.node_count e);
  (* register reads cut the combinational dependency *)
  let reg_only = Signal.(reg_q r +: consti s8 1) in
  Alcotest.(check int) "reg-only has no input deps" 0
    (List.length (Signal.input_deps reg_only))

let test_memo_consistency () =
  (* eval_memo over a shared DAG gives the same result as plain eval *)
  let i = Signal.Input.create "x" s84 in
  let x = Signal.input i in
  let sq = Signal.(x *: x) in
  let e = Signal.(resize s84 (sq +: sq)) in
  let env = Signal.Env.create () in
  Signal.Env.bind env i (fx s84 1.25);
  let memo = Hashtbl.create 8 in
  Alcotest.(check bool) "memo = plain" true
    (Fixed.equal (Signal.eval_memo memo env e) (Signal.eval env e))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "operator result formats" `Quick test_operators_formats;
    Alcotest.test_case "arithmetic evaluation" `Quick test_eval_arithmetic;
    Alcotest.test_case "mux" `Quick test_mux;
    Alcotest.test_case "mux format covering" `Quick test_mux_format_covering;
    Alcotest.test_case "registers" `Quick test_registers;
    Alcotest.test_case "register init mismatch" `Quick test_reg_init_format_mismatch;
    Alcotest.test_case "inputs and environments" `Quick test_inputs_env;
    Alcotest.test_case "rom" `Quick test_rom;
    Alcotest.test_case "shift nodes" `Quick test_shift_nodes;
    Alcotest.test_case "dag analysis" `Quick test_dag_analysis;
    Alcotest.test_case "memo consistency" `Quick test_memo_consistency;
  ]
