(* Tests for the synthesis strategy: controller + datapath split,
   operator sharing, linkage and gate-level verification. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

(* A system with a 3-state controller and a datapath with distinct
   mutually-exclusive instructions (sharing opportunities). *)
let alu_system () =
  let acc = Signal.Reg.create clk "alu_acc" s8 in
  let mode = Signal.Reg.create clk "alu_mode" Fixed.bit_format in
  let sfg_add =
    Sfg.build "alu_add" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "r" (Signal.resize s8 Signal.(x +: reg_q acc));
        Sfg.Builder.assign_resized b acc Signal.(x +: reg_q acc);
        Sfg.Builder.assign b mode Signal.(reg_q acc <: consti s8 20))
  in
  let sfg_sub =
    Sfg.build "alu_sub" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "r" (Signal.resize s8 Signal.(reg_q acc -: x));
        Sfg.Builder.assign_resized b acc Signal.(reg_q acc -: x);
        Sfg.Builder.assign b mode Signal.(reg_q acc <: consti s8 20))
  in
  let sfg_mul =
    Sfg.build "alu_mul" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "r"
          (Signal.resize ~overflow:Fixed.Saturate s8 Signal.(x *: reg_q acc));
        Sfg.Builder.assign b mode Signal.(reg_q acc <: consti s8 20))
  in
  let fsm = Fsm.create "alu_ctl" in
  let s_add = Fsm.initial fsm "adding" in
  let s_sub = Fsm.state fsm "subbing" in
  let s_mul = Fsm.state fsm "mulling" in
  Fsm.(s_add |-- cnd (Signal.reg_q mode) |+ sfg_add |-> s_sub);
  Fsm.(s_add |-- always |+ sfg_mul |-> s_mul);
  Fsm.(s_sub |-- always |+ sfg_sub |-> s_add);
  Fsm.(s_mul |-- always |+ sfg_add |-> s_add);
  let sys = Cycle_system.create "alu" in
  let c = Cycle_system.add_timed sys "alu" fsm in
  let stim =
    Cycle_system.add_input sys "x_in" s8 (fun cyc ->
        Some (Fixed.of_int s8 ((cyc * 13 mod 17) - 8)))
  in
  let p = Cycle_system.add_output sys "r_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (c, "x") ]);
  ignore (Cycle_system.connect sys (c, "r") [ (p, "in") ]);
  sys

let test_verify_shared () =
  let sys = alu_system () in
  let r = Synthesize.verify sys ~cycles:80 in
  Alcotest.(check int) "vectors" 80 r.Synthesize.vectors_checked;
  Alcotest.(check int) "no mismatches" 0 (List.length r.Synthesize.mismatches)

let test_verify_unshared () =
  let sys = alu_system () in
  let r =
    Synthesize.verify ~options:{ Synthesize.default_options with Synthesize.share_operators = false } sys
      ~cycles:80
  in
  Alcotest.(check int) "no mismatches" 0 (List.length r.Synthesize.mismatches)

let test_sharing_reduces_gates () =
  let sys = alu_system () in
  let _, shared = Synthesize.synthesize sys in
  let _, unshared =
    Synthesize.synthesize ~options:{ Synthesize.default_options with Synthesize.share_operators = false } sys
  in
  Alcotest.(check bool) "sharing reported" true
    (List.exists
       (fun c -> c.Synthesize.cr_shared_units <> [])
       shared.Synthesize.components);
  (* Sharing the multiplier across exclusive instructions must not cost
     more than duplicating it. *)
  Alcotest.(check bool) "shared <= unshared" true
    (shared.Synthesize.total.Netlist.gate_equivalents
    <= unshared.Synthesize.total.Netlist.gate_equivalents)

let test_report_contents () =
  let sys = alu_system () in
  let _, rep = Synthesize.synthesize sys in
  Alcotest.(check int) "one component" 1 (List.length rep.Synthesize.components);
  (match rep.Synthesize.components with
  | [ c ] ->
    Alcotest.(check string) "name" "alu" c.Synthesize.cr_name;
    Alcotest.(check int) "instructions" 4 c.Synthesize.cr_instructions;
    Alcotest.(check int) "states" 3 c.Synthesize.cr_states;
    Alcotest.(check bool) "gates counted" true (c.Synthesize.cr_gate_equivalents > 100)
  | _ -> Alcotest.fail "component list");
  Alcotest.(check bool) "dffs counted" true (rep.Synthesize.total.Netlist.flip_flops >= 9)

let test_controller_state_sequencing () =
  (* The synthesized netlist must follow the same state sequence; its
     outputs over time prove it (checked by verify), and the netlist is
     a valid structure for the Verilog printer. *)
  let sys = alu_system () in
  let nl, _ = Synthesize.synthesize sys in
  let text = Verilog.of_netlist nl in
  Alcotest.(check bool) "module header" true
    (String.length text > 200
    && String.sub text 0 2 = "//");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions module alu" true (contains text "module alu")

let test_ram_macro_system () =
  (* A timed component looping through a RAM kernel survives synthesis
     and verifies at gate level (the fig 6 structure, synthesized). *)
  let ptr = Signal.Reg.create clk "rm_ptr" (Fixed.unsigned ~width:3 ~frac:0) in
  let acc = Signal.Reg.create clk "rm_acc" s8 in
  let sfg =
    Sfg.build "rm_step" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        let rdata = Sfg.Builder.input b "rdata" s8 in
        Sfg.Builder.output b "addr" (Signal.resize (Fixed.unsigned ~width:3 ~frac:0) (Signal.reg_q ptr));
        Sfg.Builder.output b "wdata" (Signal.resize s8 x);
        Sfg.Builder.output b "we" Signal.vdd;
        Sfg.Builder.output b "sum" (Signal.resize s8 Signal.(rdata +: reg_q acc));
        Sfg.Builder.assign_resized b ptr
          Signal.(reg_q ptr +: consti (Fixed.unsigned ~width:3 ~frac:0) 1);
        Sfg.Builder.assign_resized b acc Signal.(rdata +: reg_q acc))
  in
  let fsm = Fsm.create "rm_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "ram_sys" in
  let c = Cycle_system.add_timed sys "stepper" fsm in
  let ram =
    Cycle_system.add_untimed sys
      (Ram_cell.kernel ~name:"test_ram_sys_ram" ~words:8 ~data_fmt:s8
         ~addr_fmt:(Fixed.unsigned ~width:3 ~frac:0))
  in
  let stim = Cycle_system.add_input sys "x_in" s8 (fun cyc -> Some (Fixed.of_int s8 (cyc mod 50))) in
  let probe = Cycle_system.add_output sys "sum_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (c, "x") ]);
  ignore (Cycle_system.connect sys (c, "addr") [ (ram, "addr") ]);
  ignore (Cycle_system.connect sys (c, "wdata") [ (ram, "wdata") ]);
  ignore (Cycle_system.connect sys (c, "we") [ (ram, "we") ]);
  ignore (Cycle_system.connect sys (ram, "rdata") [ (c, "rdata") ]);
  ignore (Cycle_system.connect sys (c, "sum") [ (probe, "in") ]);
  let r =
    Synthesize.verify ~macro_of_kernel:Ram_cell.macro_of_kernel sys ~cycles:40
  in
  Alcotest.(check int) "no mismatches" 0 (List.length r.Synthesize.mismatches);
  Alcotest.(check int) "vectors" 40 r.Synthesize.vectors_checked

let test_unknown_kernel_rejected () =
  let sys = Cycle_system.create "unk" in
  let k =
    Dataflow.Kernel.create "mystery"
      ~formats:[ ("in", s8); ("out", s8) ]
      ~inputs:[ ("in", 1) ] ~outputs:[ ("out", 1) ]
      (fun _ -> [ ("out", [ Fixed.zero s8 ]) ])
  in
  ignore (Cycle_system.add_untimed sys k);
  match Synthesize.synthesize sys with
  | exception Synthesize.Synth_error _ -> ()
  | _ -> Alcotest.fail "unknown kernel accepted"

let test_one_hot_encoding () =
  let sys = alu_system () in
  let options =
    { Synthesize.default_options with Synthesize.state_encoding = Synthesize.One_hot }
  in
  let r = Synthesize.verify ~options sys ~cycles:80 in
  Alcotest.(check int) "one-hot verifies" 0 (List.length r.Synthesize.mismatches);
  (* One-hot uses one flip-flop per state (3) instead of ceil(log2 3) = 2. *)
  let _, rep_oh = Synthesize.synthesize ~options sys in
  let _, rep_bin = Synthesize.synthesize sys in
  Alcotest.(check int) "one extra state bit" 1
    (rep_oh.Synthesize.total.Netlist.flip_flops
    - rep_bin.Synthesize.total.Netlist.flip_flops)

let suite =
  [
    Alcotest.test_case "verify (shared)" `Quick test_verify_shared;
    Alcotest.test_case "verify (unshared)" `Quick test_verify_unshared;
    Alcotest.test_case "sharing reduces gates" `Quick test_sharing_reduces_gates;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "verilog printable" `Quick test_controller_state_sequencing;
    Alcotest.test_case "RAM macro system" `Quick test_ram_macro_system;
    Alcotest.test_case "unknown kernel rejected" `Quick test_unknown_kernel_rejected;
    Alcotest.test_case "one-hot encoding" `Quick test_one_hot_encoding;
  ]
