(* Tests for the multi-level IR: lowering determinism (same input
   digest must produce the same output digest), provenance-chain
   recording, and cross-level equivalence of the reference designs at
   every level, pre- and post-optimization. *)

let dect_design () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float_of_int c *. 0.37) /. 2.2)))
      ()
  in
  d.Dect_transceiver.system

let hcor_design () =
  let bits = Dect_stimuli.burst ~seed:1 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

let full_pipeline =
  [ Ocapi_ir.lower_to_gate; Ocapi_ir.optimize_gates ]

(* --- lowering determinism -------------------------------------------------- *)

(* Two independently built copies of the same design share a behavioral
   digest; every pass must then produce identical output digests —
   digest-in determines digest-out, the property that makes the
   provenance chain (and gate-level result caching) sound. *)
let check_deterministic build =
  let d1 = Ocapi_ir.behavioral (build ()) in
  let d2 = Ocapi_ir.behavioral (build ()) in
  Alcotest.(check string) "behavioral digests agree" d1.Ocapi_ir.ir_digest
    d2.Ocapi_ir.ir_digest;
  let r1 = Ocapi_ir.apply Ocapi_ir.lower_to_rtl d1 in
  let r2 = Ocapi_ir.apply Ocapi_ir.lower_to_rtl d2 in
  Alcotest.(check string) "rtl digests agree" r1.Ocapi_ir.ir_digest
    r2.Ocapi_ir.ir_digest;
  let g1 = Ocapi_ir.pipeline full_pipeline d1 in
  let g2 = Ocapi_ir.pipeline full_pipeline d2 in
  Alcotest.(check string) "optimized gate digests agree" g1.Ocapi_ir.ir_digest
    g2.Ocapi_ir.ir_digest

let test_determinism_hcor () = check_deterministic hcor_design
let test_determinism_dect () = check_deterministic dect_design

(* --- provenance ------------------------------------------------------------ *)

let test_provenance_chain () =
  let d0 = Ocapi_ir.behavioral (hcor_design ()) in
  Alcotest.(check (list string)) "fresh design has empty provenance" []
    (List.map (fun p -> p.Ocapi_ir.pr_pass) d0.Ocapi_ir.ir_provenance);
  let d = Ocapi_ir.pipeline full_pipeline d0 in
  Alcotest.(check (list string))
    "pass names recorded oldest first"
    [ "lower-to-gate"; "optimize-gates" ]
    (List.map (fun p -> p.Ocapi_ir.pr_pass) d.Ocapi_ir.ir_provenance);
  (* The chain links: the root digest heads it, each output digest is
     the next link's input digest, and the last output digest is the
     design's own. *)
  let rec check_links input = function
    | [] -> input
    | p :: rest ->
      Alcotest.(check string)
        (p.Ocapi_ir.pr_pass ^ " input digest links")
        input p.Ocapi_ir.pr_input_digest;
      check_links p.Ocapi_ir.pr_output_digest rest
  in
  let last = check_links d0.Ocapi_ir.ir_digest d.Ocapi_ir.ir_provenance in
  Alcotest.(check string) "chain ends at the design digest"
    d.Ocapi_ir.ir_digest last;
  Alcotest.(check string) "level is gate" "gate" (Ocapi_ir.level_name d)

let test_pass_registry () =
  Alcotest.(check (list string))
    "registry names"
    [ "lower-to-rtl"; "lower-to-gate"; "optimize-gates" ]
    (Ocapi_ir.pass_names ());
  List.iter
    (fun n ->
      match Ocapi_ir.find_pass n with
      | Some p -> Alcotest.(check string) "find_pass name" n p.Ocapi_ir.pass_name
      | None -> Alcotest.failf "pass %S not found" n)
    (Ocapi_ir.pass_names ());
  Alcotest.(check bool) "unknown pass" true (Ocapi_ir.find_pass "fold" = None)

(* A pass applied at the wrong level is a structured error, not a
   crash. *)
let test_wrong_level_rejected () =
  let d = Ocapi_ir.behavioral (hcor_design ()) in
  let g = Ocapi_ir.pipeline full_pipeline d in
  match Ocapi_ir.apply Ocapi_ir.lower_to_rtl g with
  | _ -> Alcotest.fail "expected Ocapi_error.Error"
  | exception Ocapi_error.Error e ->
    Alcotest.(check bool) "code is Unsupported" true
      (e.Ocapi_error.e_code = Ocapi_error.Unsupported)

(* --- cross-level equivalence ----------------------------------------------- *)

let check_equiv name a b ~cycles =
  match Ocapi_ir.check_equivalence ~cycles a b with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name (Ocapi_error.to_string e)

(* Behavioral = RTL = gate = optimized gate, token for token, on both
   reference designs — the paper's claim that one description drives
   every level. *)
let check_all_levels build ~cycles =
  let d = Ocapi_ir.behavioral (build ()) in
  let rtl = Ocapi_ir.apply Ocapi_ir.lower_to_rtl d in
  let gate = Ocapi_ir.apply Ocapi_ir.lower_to_gate d in
  let opt = Ocapi_ir.apply Ocapi_ir.optimize_gates gate in
  check_equiv "behavioral = rtl" d rtl ~cycles;
  check_equiv "behavioral = gate" d gate ~cycles;
  check_equiv "behavioral = optimized gate" d opt ~cycles;
  check_equiv "rtl = gate" rtl gate ~cycles

let test_equivalence_hcor () = check_all_levels hcor_design ~cycles:120
let test_equivalence_dect () = check_all_levels dect_design ~cycles:200

(* Two different designs must NOT check equivalent, and the failure is
   a structured [Mismatch] diagnostic naming a probe. *)
let test_mismatch_is_structured () =
  let a = Ocapi_ir.behavioral (hcor_design ()) in
  let b = Ocapi_ir.behavioral (dect_design ()) in
  match Ocapi_ir.check_equivalence ~cycles:40 a b with
  | Ok () -> Alcotest.fail "distinct designs checked equivalent"
  | Error e ->
    Alcotest.(check bool) "code is Mismatch" true
      (e.Ocapi_error.e_code = Ocapi_error.Mismatch);
    Alcotest.(check bool) "names a probe" true
      (e.Ocapi_error.e_construct <> None)

let suite =
  [
    Alcotest.test_case "lowering determinism: hcor" `Quick
      test_determinism_hcor;
    Alcotest.test_case "lowering determinism: dect" `Quick
      test_determinism_dect;
    Alcotest.test_case "provenance chain links" `Quick test_provenance_chain;
    Alcotest.test_case "pass registry" `Quick test_pass_registry;
    Alcotest.test_case "wrong level is a structured error" `Quick
      test_wrong_level_rejected;
    Alcotest.test_case "equivalence across levels: hcor" `Quick
      test_equivalence_hcor;
    Alcotest.test_case "equivalence across levels: dect" `Quick
      test_equivalence_dect;
    Alcotest.test_case "mismatch is a structured error" `Quick
      test_mismatch_is_structured;
  ]
