(* Tests for the native (dynlinked) engine: probe-history equivalence
   with the interpreted engine on the HCOR and DECT designs, the
   artifact cache (warm loads skip the compiler, corrupt or stale
   [.cmxs] artifacts are counted misses followed by a recompile), and
   the structured [Native_unavailable] degradation when the toolchain
   is missing or the engine is disabled.  Every test also passes on a
   toolchain-less host, where the engine serves its interpreted
   fallback behind the same session surface. *)

let native_ok () =
  match Ocapi_native.availability () with Ok () -> true | Error _ -> false

(* A small accumulator design with native-test-local names, so its
   digest never collides with other suites' designs in the shared
   artifact cache.  [width] varies the digest between tests. *)
let accum ~width () =
  let clk = Clock.default in
  let fmt = Fixed.signed ~width ~frac:0 in
  let acc = Signal.Reg.create clk "native_acc" fmt in
  let sfg =
    Sfg.build "native_step" (fun b ->
        let x = Sfg.Builder.input b "x" fmt in
        Sfg.Builder.output b "y"
          (Signal.resize ~overflow:Fixed.Saturate fmt
             Signal.(x +: reg_q acc));
        Sfg.Builder.assign_resized b acc Signal.(x -: reg_q acc))
  in
  let fsm = Fsm.create "native_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "native_tiny" in
  let t = Cycle_system.add_timed sys "t" fsm in
  let stim =
    Cycle_system.add_input sys "x_in" fmt (fun c ->
        Some (Fixed.of_int fmt ((c mod 5) - 2)))
  in
  let p = Cycle_system.add_output sys "y_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (t, "x") ]);
  ignore (Cycle_system.connect sys (t, "y") [ (p, "in") ]);
  sys

(* --- equivalence with the interpreted engine ------------------------------- *)

let check_native_matches_interp sys ~cycles =
  let native = Flow.simulate ~engine:"native" sys ~cycles in
  let interp = Flow.simulate ~engine:"interp" sys ~cycles in
  Alcotest.(check bool)
    "native histories non-empty" true
    (List.exists (fun (_, h) -> h <> []) native);
  Alcotest.(check bool) "native = interp" true (native = interp)

let test_equivalence_hcor () =
  let bits = Dect_stimuli.burst ~seed:7 () in
  let tx = Dect_stimuli.transmit bits in
  let rx =
    Dect_stimuli.channel ~taps:[| 1.0; 0.15; -0.05 |] ~snr_db:30.0 ~seed:7 tx
  in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  let h = Hcor.create ~stimulus:(Hcor.sample_stimulus samples) () in
  check_native_matches_interp h.Hcor.system ~cycles:120

let test_equivalence_dect () =
  let stimulus c =
    Some
      (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
         (sin (float_of_int c *. 0.37) /. 2.2))
  in
  let d = Dect_transceiver.create ~stimulus () in
  check_native_matches_interp d.Dect_transceiver.system ~cycles:160

(* --- the artifact cache ---------------------------------------------------- *)

let uniq = ref 0

(* Point OCAPI_NATIVE_CACHE_DIR at a fresh directory and zero the
   counters, so compile/hit counts observe exactly this test's
   sessions.  Restores the default directory afterwards (putenv cannot
   unset, but the empty string selects the default). *)
let with_fresh_native_cache f =
  incr uniq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi_native_test_%d_%d" (Unix.getpid ()) !uniq)
  in
  Unix.putenv "OCAPI_NATIVE_CACHE_DIR" dir;
  Ocapi_native.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "OCAPI_NATIVE_CACHE_DIR" "";
      if Sys.file_exists dir then begin
        Array.iter
          (fun f ->
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

(* One full session on the native engine: reset, step [cycles], return
   the histories. *)
let run_session sys ~cycles =
  let module E = (val Ocapi_engine.get "native") in
  let ses = E.make sys in
  Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
      ses.Ocapi_engine.ses_reset ();
      for _ = 1 to cycles do
        ses.Ocapi_engine.ses_step ()
      done;
      ses.Ocapi_engine.ses_histories ())

let check_fallback_serves sys =
  Ocapi_native.reset_stats ();
  let native = Flow.simulate ~engine:"native" sys ~cycles:16 in
  let interp = Flow.simulate ~engine:"interp" sys ~cycles:16 in
  Alcotest.(check bool)
    "fallback counted" true
    ((Ocapi_native.stats ()).Ocapi_native.fallbacks >= 1);
  Alcotest.(check bool) "fallback histories = interp" true (native = interp)

let test_warm_cache_skips_compiler () =
  let sys = accum ~width:9 () in
  if not (native_ok ()) then check_fallback_serves sys
  else
    with_fresh_native_cache (fun _dir ->
        let cold = run_session sys ~cycles:12 in
        let s1 = Ocapi_native.stats () in
        Alcotest.(check int) "cold run compiles once" 1 s1.Ocapi_native.compiles;
        Alcotest.(check int)
          "cold run is not a cache hit" 0 s1.Ocapi_native.cache_hits;
        let warm = run_session sys ~cycles:12 in
        let s2 = Ocapi_native.stats () in
        Alcotest.(check int)
          "warm run invokes no compiler" 1 s2.Ocapi_native.compiles;
        Alcotest.(check int)
          "warm run is a counted cache hit" 1 s2.Ocapi_native.cache_hits;
        Alcotest.(check bool) "warm histories identical" true (cold = warm))

(* Replace a cached artifact with garbage bytes.  Safe to do in place:
   the engine never dynlinks the cache file itself, only a throwaway
   per-load copy, so no live mapping is backed by this inode. *)
let overwrite path bytes =
  (try Sys.remove path with Sys_error _ -> ());
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let garble dir suffix bytes =
  Array.iter
    (fun f ->
      if Filename.check_suffix f suffix then
        overwrite (Filename.concat dir f) bytes)
    (Sys.readdir dir)

let test_corrupt_artifact_recompiles () =
  let sys = accum ~width:10 () in
  if not (native_ok ()) then check_fallback_serves sys
  else
    with_fresh_native_cache (fun dir ->
        let cold = run_session sys ~cycles:12 in
        (* Corrupt the shared object: the Dynlink failure must be a
           counted miss, dropped from the cache and recompiled — not a
           crash, not a fallback. *)
        garble dir ".cmxs" "this is not a shared object";
        let again = run_session sys ~cycles:12 in
        let s = Ocapi_native.stats () in
        Alcotest.(check bool)
          "corrupt artifact is a counted miss" true
          (s.Ocapi_native.corrupt_misses >= 1);
        Alcotest.(check int) "recompiled" 2 s.Ocapi_native.compiles;
        Alcotest.(check int) "no fallback taken" 0 s.Ocapi_native.fallbacks;
        Alcotest.(check bool) "recompiled run bit-identical" true (cold = again);
        (* A stale/garbled meta (undecodable, or a stale emitter
           version) must take the same counted-miss path. *)
        garble dir ".meta" "stale metadata";
        let third = run_session sys ~cycles:12 in
        let s = Ocapi_native.stats () in
        Alcotest.(check bool)
          "stale meta is a counted miss" true
          (s.Ocapi_native.corrupt_misses >= 2);
        Alcotest.(check int) "recompiled again" 3 s.Ocapi_native.compiles;
        Alcotest.(check bool) "third run bit-identical" true (cold = third))

(* Two live sessions built from the same digest must be genuinely
   private instances.  Each load dynlinks a throwaway copy of the
   artifact precisely because dlopen dedupes by pathname: reloading the
   cached path in place would re-run the module initializer over the
   shared mapping and rebind the first session's state out from under
   it (this is the engine-sweep / parallel-campaign shape). *)
let test_concurrent_sessions_are_private () =
  let sys_a = accum ~width:12 () in
  let sys_b = accum ~width:12 () in
  let expected = Flow.simulate ~engine:"interp" sys_a ~cycles:20 in
  let module E = (val Ocapi_engine.get "native") in
  let ses_a = E.make sys_a in
  Fun.protect ~finally:ses_a.Ocapi_engine.ses_close (fun () ->
      ses_a.Ocapi_engine.ses_reset ();
      let ses_b = E.make sys_b in
      Fun.protect ~finally:ses_b.Ocapi_engine.ses_close (fun () ->
          ses_b.Ocapi_engine.ses_reset ();
          for _ = 1 to 20 do
            ses_a.Ocapi_engine.ses_step ();
            ses_b.Ocapi_engine.ses_step ()
          done;
          Alcotest.(check bool)
            "session A unperturbed by B" true
            (ses_a.Ocapi_engine.ses_histories () = expected);
          Alcotest.(check bool)
            "session B unperturbed by A" true
            (ses_b.Ocapi_engine.ses_histories () = expected)))

(* --- unavailability -------------------------------------------------------- *)

let test_disabled_is_structured_and_serves_fallback () =
  let prior = Option.value ~default:"" (Sys.getenv_opt "OCAPI_NATIVE_DISABLE") in
  Unix.putenv "OCAPI_NATIVE_DISABLE" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "OCAPI_NATIVE_DISABLE" prior)
    (fun () ->
      (match Ocapi_native.availability () with
      | Ok () -> Alcotest.fail "expected Error from availability"
      | Error e ->
        Alcotest.(check bool)
          "code is Native_unavailable" true
          (e.Ocapi_error.e_code = Ocapi_error.Native_unavailable);
        Alcotest.(check bool)
          "diagnostic names the engine" true
          (e.Ocapi_error.e_engine = "native"));
      check_fallback_serves (accum ~width:11 ()))

let suite =
  [
    Alcotest.test_case "native = interp on HCOR" `Quick test_equivalence_hcor;
    Alcotest.test_case "native = interp on DECT" `Slow test_equivalence_dect;
    Alcotest.test_case "warm cache skips the compiler" `Quick
      test_warm_cache_skips_compiler;
    Alcotest.test_case "corrupt/stale artifact: counted miss + recompile"
      `Quick test_corrupt_artifact_recompiles;
    Alcotest.test_case "concurrent sessions are private instances" `Quick
      test_concurrent_sessions_are_private;
    Alcotest.test_case "disabled: structured error, fallback serves" `Quick
      test_disabled_is_structured_and_serves_fallback;
  ]
