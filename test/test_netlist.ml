(* Tests for the gate-level netlist substrate and its simulator. *)

let test_gate_logic () =
  let nl = Netlist.create "gates" in
  let a = Netlist.input_bus nl "a" 1 and b = Netlist.input_bus nl "b" 1 in
  let outs =
    [
      ("and_o", Netlist.gate nl Netlist.And [ a.(0); b.(0) ]);
      ("or_o", Netlist.gate nl Netlist.Or [ a.(0); b.(0) ]);
      ("xor_o", Netlist.gate nl Netlist.Xor [ a.(0); b.(0) ]);
      ("nand_o", Netlist.gate nl Netlist.Nand [ a.(0); b.(0) ]);
      ("nor_o", Netlist.gate nl Netlist.Nor [ a.(0); b.(0) ]);
      ("not_o", Netlist.gate nl Netlist.Not [ a.(0) ]);
      ("buf_o", Netlist.gate nl Netlist.Buf [ a.(0) ]);
      ("c1", Netlist.gate nl Netlist.Const1 []);
    ]
  in
  List.iter (fun (n, net) -> Netlist.output_bus nl n [| net |]) outs;
  let sim = Netlist.Sim.create nl in
  let truth av bv expect_and expect_or expect_xor =
    Netlist.Sim.set_input sim "a" (if av then 1L else 0L);
    Netlist.Sim.set_input sim "b" (if bv then 1L else 0L);
    Netlist.Sim.settle sim;
    let g n = Netlist.Sim.get_output sim ~signed:false n = 1L in
    Alcotest.(check bool) "and" expect_and (g "and_o");
    Alcotest.(check bool) "or" expect_or (g "or_o");
    Alcotest.(check bool) "xor" expect_xor (g "xor_o");
    Alcotest.(check bool) "nand" (not expect_and) (g "nand_o");
    Alcotest.(check bool) "nor" (not expect_or) (g "nor_o");
    Alcotest.(check bool) "not" (not av) (g "not_o");
    Alcotest.(check bool) "buf" av (g "buf_o");
    Alcotest.(check bool) "const" true (g "c1")
  in
  truth false false false false false;
  truth true false false true true;
  truth false true false true true;
  truth true true true true false

let test_mux_gate () =
  let nl = Netlist.create "mux" in
  let s = Netlist.input_bus nl "s" 1 in
  let a = Netlist.input_bus nl "a" 1 and b = Netlist.input_bus nl "b" 1 in
  Netlist.output_bus nl "o" [| Netlist.gate nl Netlist.Mux2 [ s.(0); a.(0); b.(0) ] |];
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "a" 1L;
  Netlist.Sim.set_input sim "b" 0L;
  Netlist.Sim.set_input sim "s" 1L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "sel=1 -> a" 1L (Netlist.Sim.get_output sim ~signed:false "o");
  Netlist.Sim.set_input sim "s" 0L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "sel=0 -> b" 0L (Netlist.Sim.get_output sim ~signed:false "o")

let test_dff_and_clock () =
  let nl = Netlist.create "dffs" in
  let d = Netlist.input_bus nl "d" 1 in
  let q = Netlist.dff nl ~init:true d.(0) in
  Netlist.output_bus nl "q" [| q |];
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "init" 1L (Netlist.Sim.get_output sim ~signed:false "q");
  Netlist.Sim.set_input sim "d" 0L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "not yet latched" 1L
    (Netlist.Sim.get_output sim ~signed:false "q");
  Netlist.Sim.clock sim;
  Alcotest.(check int64) "latched" 0L (Netlist.Sim.get_output sim ~signed:false "q")

let test_dff_en () =
  let nl = Netlist.create "dffen" in
  let d = Netlist.input_bus nl "d" 1 and en = Netlist.input_bus nl "en" 1 in
  let q = Netlist.dff_en nl ~enable:en.(0) d.(0) in
  Netlist.output_bus nl "q" [| q |];
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "d" 1L;
  Netlist.Sim.set_input sim "en" 0L;
  Netlist.Sim.settle sim;
  Netlist.Sim.clock sim;
  Alcotest.(check int64) "held" 0L (Netlist.Sim.get_output sim ~signed:false "q");
  Netlist.Sim.set_input sim "en" 1L;
  Netlist.Sim.settle sim;
  Netlist.Sim.clock sim;
  Alcotest.(check int64) "loaded" 1L (Netlist.Sim.get_output sim ~signed:false "q")

let test_rom_macro () =
  let nl = Netlist.create "roms" in
  let addr = Netlist.input_bus nl "addr" 3 in
  let out = Netlist.rom nl ~name:"t" ~width:8 ~contents:(Array.init 5 (fun i -> Int64.of_int (i * 11))) addr in
  Netlist.output_bus nl "data" out;
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "addr" 3L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "read" 33L (Netlist.Sim.get_output sim ~signed:false "data");
  (* wrap modulo size *)
  Netlist.Sim.set_input sim "addr" 6L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "wrap" 11L (Netlist.Sim.get_output sim ~signed:false "data")

let test_ram_macro () =
  let nl = Netlist.create "rams" in
  let addr = Netlist.input_bus nl "addr" 3 in
  let wdata = Netlist.input_bus nl "wdata" 8 in
  let we = Netlist.input_bus nl "we" 1 in
  let rdata = Netlist.ram nl ~name:"m" ~words:8 ~width:8 ~addr ~wdata ~we:we.(0) in
  Netlist.output_bus nl "rdata" rdata;
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "addr" 2L;
  Netlist.Sim.set_input sim "wdata" 99L;
  Netlist.Sim.set_input sim "we" 1L;
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "read-before-write" 0L
    (Netlist.Sim.get_output sim ~signed:false "rdata");
  Netlist.Sim.clock sim;
  Alcotest.(check int64) "after clock" 99L
    (Netlist.Sim.get_output sim ~signed:false "rdata");
  (* no write when we=0 *)
  Netlist.Sim.set_input sim "wdata" 5L;
  Netlist.Sim.set_input sim "we" 0L;
  Netlist.Sim.settle sim;
  Netlist.Sim.clock sim;
  Alcotest.(check int64) "unchanged" 99L
    (Netlist.Sim.get_output sim ~signed:false "rdata")

let test_buses_and_signed_read () =
  let nl = Netlist.create "bus" in
  let a = Netlist.input_bus nl "a" 4 in
  Netlist.output_bus nl "o" (Netlist.extend_bus nl ~signed:true a 8);
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.set_input sim "a" (-3L) (* 1101 *);
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "sign extended" (-3L)
    (Netlist.Sim.get_output sim ~signed:true "o");
  Alcotest.(check int64) "raw bits" 253L
    (Netlist.Sim.get_output sim ~signed:false "o")

let test_const_bus () =
  let nl = Netlist.create "constb" in
  Netlist.output_bus nl "o" (Netlist.const_bus nl ~width:8 0xA5L);
  let sim = Netlist.Sim.create nl in
  Netlist.Sim.settle sim;
  Alcotest.(check int64) "constant" 0xA5L
    (Netlist.Sim.get_output sim ~signed:false "o")

let test_double_driver_rejected () =
  let nl = Netlist.create "dd" in
  let a = Netlist.input_bus nl "a" 1 in
  let o = Netlist.gate nl Netlist.Buf [ a.(0) ] in
  match Netlist.buf_into nl ~dst:o a.(0) with
  | exception Netlist.Netlist_error _ -> ()
  | _ -> Alcotest.fail "double driver accepted"

let test_oscillation_detected () =
  (* A ring of one inverter. *)
  let nl = Netlist.create "osc" in
  let loop_net = Netlist.new_net nl in
  let inv = Netlist.gate nl Netlist.Not [ loop_net ] in
  Netlist.buf_into nl ~dst:loop_net inv;
  Netlist.output_bus nl "o" [| inv |];
  let sim = Netlist.Sim.create nl in
  match Netlist.Sim.settle sim with
  | exception Netlist.Sim.Did_not_settle _ -> ()
  | () -> Alcotest.fail "oscillation not detected"

let test_counts () =
  let nl = Netlist.create "counting" in
  let a = Netlist.input_bus nl "a" 1 in
  let x = Netlist.gate nl Netlist.Xor [ a.(0); a.(0) ] in
  let _q = Netlist.dff nl x in
  ignore (Netlist.rom nl ~name:"r" ~width:4 ~contents:[| 1L; 2L |] a);
  let c = Netlist.counts nl in
  Alcotest.(check int) "comb" 1 c.Netlist.combinational;
  Alcotest.(check int) "dff" 1 c.Netlist.flip_flops;
  Alcotest.(check int) "rom bits" 8 c.Netlist.rom_bits;
  Alcotest.(check bool) "equivalents include dff weight" true
    (c.Netlist.gate_equivalents >= 2 + 6)

let suite =
  [
    Alcotest.test_case "gate truth tables" `Quick test_gate_logic;
    Alcotest.test_case "mux gate" `Quick test_mux_gate;
    Alcotest.test_case "dff and clock" `Quick test_dff_and_clock;
    Alcotest.test_case "dff with enable" `Quick test_dff_en;
    Alcotest.test_case "rom macro" `Quick test_rom_macro;
    Alcotest.test_case "ram macro" `Quick test_ram_macro;
    Alcotest.test_case "buses and signed read" `Quick test_buses_and_signed_read;
    Alcotest.test_case "const bus" `Quick test_const_bus;
    Alcotest.test_case "double driver rejected" `Quick test_double_driver_rejected;
    Alcotest.test_case "oscillation detected" `Quick test_oscillation_detected;
    Alcotest.test_case "gate counts" `Quick test_counts;
  ]

let test_combinational_depth () =
  let nl = Netlist.create "depth" in
  let a = Netlist.input_bus nl "a" 1 in
  (* A chain of 5 inverters, then a register, then 2 more. *)
  let rec chain net k = if k = 0 then net else chain (Netlist.gate nl Netlist.Not [ net ]) (k - 1) in
  let five = chain a.(0) 5 in
  let q = Netlist.dff nl five in
  let two = chain q 2 in
  Netlist.output_bus nl "o" [| two |];
  let depth, cyclic = Netlist.combinational_depth nl in
  Alcotest.(check int) "longest chain" 5 depth;
  Alcotest.(check int) "no cycles" 0 cyclic;
  (* A gated false cycle is excluded but counted. *)
  let nl2 = Netlist.create "depth2" in
  let b = Netlist.input_bus nl2 "b" 1 in
  let loop_net = Netlist.new_net nl2 in
  let g1 = Netlist.gate nl2 Netlist.And [ b.(0); loop_net ] in
  Netlist.buf_into nl2 ~dst:loop_net g1;
  Netlist.output_bus nl2 "o" [| g1 |];
  let _, cyclic2 = Netlist.combinational_depth nl2 in
  Alcotest.(check int) "cycle detected" 2 cyclic2

let suite = suite @ [ Alcotest.test_case "combinational depth" `Quick test_combinational_depth ]
