(* Differential tests: the naive bit-vector evaluator must agree with
   the quantized evaluator on every operation (it is both the C3 bench
   comparator and an independent oracle for Fixed). *)

let via_bv2 op_bv a b = Bitvector.to_fixed (op_bv (Bitvector.of_fixed a) (Bitvector.of_fixed b))
let via_bv1 op_bv a = Bitvector.to_fixed (op_bv (Bitvector.of_fixed a))

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let binop_agrees name fixed_op bv_op =
  prop ("bv " ^ name) 500 Gen.pair_arb (fun (a, b) ->
      match fixed_op a b with
      | exception Fixed.Format_error _ -> true
      | expect -> Fixed.equal expect (via_bv2 bv_op a b))

let properties =
  [
    binop_agrees "add" Fixed.add Bitvector.add;
    binop_agrees "sub" Fixed.sub Bitvector.sub;
    binop_agrees "mul" Fixed.mul Bitvector.mul;
    binop_agrees "logand" Fixed.logand Bitvector.logand;
    binop_agrees "logor" Fixed.logor Bitvector.logor;
    binop_agrees "logxor" Fixed.logxor Bitvector.logxor;
    binop_agrees "eq" Fixed.eq Bitvector.eq;
    binop_agrees "lt" Fixed.lt Bitvector.lt;
    prop "bv neg" 500 Gen.value_arb (fun v ->
        Fixed.equal (Fixed.neg v) (via_bv1 Bitvector.neg v));
    prop "bv lognot" 500 Gen.value_arb (fun v ->
        Fixed.equal (Fixed.lognot v) (via_bv1 Bitvector.lognot v));
    prop "bv compare" 500 Gen.pair_arb (fun (a, b) ->
        compare (Fixed.compare_value a b) 0
        = compare (Bitvector.compare_value (Bitvector.of_fixed a) (Bitvector.of_fixed b)) 0);
    prop "bv roundtrip" 500 Gen.value_arb (fun v ->
        Fixed.equal v (Bitvector.to_fixed (Bitvector.of_fixed v)));
    prop "bv resize" 1000
      (QCheck.triple Gen.value_arb
         (QCheck.make Gen.format_gen)
         (QCheck.make (QCheck.Gen.pair Gen.rounding_gen Gen.overflow_gen)))
      (fun (v, fmt, (round, overflow)) ->
        match Fixed.resize ~round ~overflow fmt v with
        | exception _ -> true
        | expect ->
          Fixed.equal expect
            (Bitvector.to_fixed
               (Bitvector.resize ~round ~overflow fmt (Bitvector.of_fixed v))));
  ]

let test_bit_access () =
  let v = Fixed.create (Fixed.unsigned ~width:5 ~frac:0) 0b10110L in
  let bv = Bitvector.of_fixed v in
  Alcotest.(check int) "width" 5 (Bitvector.width bv);
  Alcotest.(check bool) "bit0" false (Bitvector.bit bv 0);
  Alcotest.(check bool) "bit1" true (Bitvector.bit bv 1);
  Alcotest.(check bool) "bit4" true (Bitvector.bit bv 4)

let suite =
  List.map QCheck_alcotest.to_alcotest properties
  @ [ Alcotest.test_case "bit access" `Quick test_bit_access ]
