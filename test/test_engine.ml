(* Tests for the ENGINE registry and its supporting machinery: the
   canonical design digest (stability across rebuilds and global
   instance-counter offsets, sensitivity to wordlength and topology
   edits), registry lookup and aliasing, the keyed result cache
   (warm-vs-cold bit-identity on every engine, memory and disk hits),
   and the replicate shared-state footgun detection. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

(* A small accumulator design, parameterized so the digest tests can
   make targeted edits: [width] changes only a register/net wordlength,
   [tap] changes only the interconnect topology. *)
let tiny ?(width = 8) ?(tap = false) () =
  let fmt = Fixed.signed ~width ~frac:0 in
  let acc = Signal.Reg.create clk "tiny_acc" fmt in
  let sfg =
    Sfg.build "tiny_step" (fun b ->
        let x = Sfg.Builder.input b "x" fmt in
        Sfg.Builder.output b "y"
          (Signal.resize ~overflow:Fixed.Saturate fmt
             Signal.(x +: reg_q acc));
        Sfg.Builder.assign_resized b acc Signal.(x -: reg_q acc))
  in
  let fsm = Fsm.create "tiny_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "tiny" in
  let t = Cycle_system.add_timed sys "t" fsm in
  let stim =
    Cycle_system.add_input sys "x_in" fmt (fun c ->
        Some (Fixed.of_int fmt ((c mod 5) - 2)))
  in
  let p = Cycle_system.add_output sys "y_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (t, "x") ]);
  let y_sinks =
    if tap then
      [ (p, "in"); (Cycle_system.add_output sys "y_tap", "in") ]
    else [ (p, "in") ]
  in
  ignore (Cycle_system.connect sys (t, "y") y_sinks);
  sys

(* --- digest stability ------------------------------------------------------- *)

let test_digest_built_twice_equal () =
  Alcotest.(check string)
    "same construction, same digest"
    (Cycle_system.digest (tiny ()))
    (Cycle_system.digest (tiny ()))

(* The digest must be derived from the structure alone, never from the
   global signal/register instance counters: building unrelated designs
   in between (which advances every counter) must not change it. *)
let test_digest_instance_counter_independent () =
  let d1 = Cycle_system.digest (tiny ()) in
  for i = 0 to 9 do
    ignore (Signal.Reg.create clk (Printf.sprintf "spacer_%d" i) s8)
  done;
  ignore (tiny ~width:11 ());
  let d2 = Cycle_system.digest (tiny ()) in
  Alcotest.(check string) "digest survives counter offsets" d1 d2

let test_digest_wordlength_sensitive () =
  Alcotest.(check bool)
    "wordlength edit changes the digest" false
    (Cycle_system.digest (tiny ~width:8 ())
    = Cycle_system.digest (tiny ~width:9 ()))

let test_digest_topology_sensitive () =
  Alcotest.(check bool)
    "topology edit changes the digest" false
    (Cycle_system.digest (tiny ())
    = Cycle_system.digest (tiny ~tap:true ()))

(* --- registry --------------------------------------------------------------- *)

let test_registry_names_and_aliases () =
  Alcotest.(check (list string))
    "registry order is the Table 1 order"
    [ "interp"; "compiled"; "rtl"; "native"; "gate" ]
    (Ocapi_engine.names ());
  let name n =
    match Ocapi_engine.find n with
    | Some e -> Ocapi_engine.name_of e
    | None -> Alcotest.failf "engine %S not found" n
  in
  Alcotest.(check string) "canonical name" "interp" (name "interp");
  Alcotest.(check string) "alias interpreted" "interp" (name "interpreted");
  Alcotest.(check string) "alias rtl-sim" "rtl" (name "rtl-sim");
  Alcotest.(check string) "alias jit" "native" (name "jit");
  Alcotest.(check string) "alias netlist" "gate" (name "netlist");
  Alcotest.(check bool) "unknown name" true (Ocapi_engine.find "gates" = None)

let test_unknown_engine_structured_error () =
  match Flow.simulate ~engine:"bogus" (tiny ()) ~cycles:4 with
  | _ -> Alcotest.fail "expected Ocapi_error.Error"
  | exception Ocapi_error.Error e ->
    Alcotest.(check bool)
      "code is Unsupported" true
      (e.Ocapi_error.e_code = Ocapi_error.Unsupported);
    Alcotest.(check bool)
      "message names the registry" true
      (String.length e.Ocapi_error.e_message > 0)

(* Sessions mark their system while open and unmark it on close, which
   is what the replicate footgun detection keys on. *)
let test_session_attach_detach () =
  let sys = tiny () in
  Alcotest.(check (list string))
    "fresh system unowned" [] (Cycle_system.attached_engines sys);
  let module E = (val Ocapi_engine.get "interp") in
  let ses = E.make sys in
  Alcotest.(check (list string))
    "open session owns it" [ "interp" ]
    (Cycle_system.attached_engines sys);
  ses.Ocapi_engine.ses_close ();
  ses.Ocapi_engine.ses_close () (* idempotent *);
  Alcotest.(check (list string))
    "closed session released it" [] (Cycle_system.attached_engines sys)

(* --- the keyed result cache -------------------------------------------------- *)

let with_cache f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi_cache_test_%d" (Unix.getpid ()))
  in
  Flow.Cache.enable ~dir ();
  Flow.Cache.clear ();
  Flow.Cache.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f ())

(* A warm run must be bit-identical to the cold run on every registry
   engine, and count one hit per engine. *)
let test_cache_warm_identical_all_engines () =
  with_cache (fun () ->
      let sys = tiny () in
      let cycles = 24 in
      List.iter
        (fun e ->
          let engine = Ocapi_engine.name_of e in
          let cold = Flow.simulate ~engine sys ~cycles in
          let warm = Flow.simulate ~engine sys ~cycles in
          Alcotest.(check bool)
            (engine ^ " warm = cold") true (cold = warm);
          Alcotest.(check bool)
            (engine ^ " histories non-empty") true
            (List.exists (fun (_, h) -> h <> []) cold))
        (Ocapi_engine.all ());
      let st = Flow.Cache.stats () in
      let n = List.length (Ocapi_engine.all ()) in
      Alcotest.(check int) "one hit per engine" n st.Flow.Cache.hits;
      Alcotest.(check int) "one miss per engine" n st.Flow.Cache.misses;
      Alcotest.(check int) "one entry per engine" n st.Flow.Cache.entries)

(* Key discrimination: a different engine, seed or cycle count must not
   be served from an existing entry. *)
let test_cache_key_discriminates () =
  with_cache (fun () ->
      let sys = tiny () in
      ignore (Flow.simulate ~engine:"interp" sys ~cycles:16);
      ignore (Flow.simulate ~engine:"compiled" sys ~cycles:16);
      ignore (Flow.simulate ~engine:"interp" ~seed:1 sys ~cycles:16);
      ignore (Flow.simulate ~engine:"interp" sys ~cycles:17);
      let st = Flow.Cache.stats () in
      Alcotest.(check int) "four distinct keys" 4 st.Flow.Cache.misses;
      Alcotest.(check int) "no false hits" 0 st.Flow.Cache.hits)

(* Dropping the in-memory table must leave the disk store serving warm
   runs, still bit-identically. *)
let test_cache_disk_roundtrip () =
  with_cache (fun () ->
      let sys = tiny () in
      let cold = Flow.simulate ~engine:"compiled" sys ~cycles:20 in
      Flow.Cache.clear () (* memory gone, disk survives *);
      let warm = Flow.simulate ~engine:"compiled" sys ~cycles:20 in
      Alcotest.(check bool) "disk warm = cold" true (cold = warm);
      let st = Flow.Cache.stats () in
      Alcotest.(check bool) "disk hit recorded" true
        (st.Flow.Cache.disk_hits >= 1);
      Alcotest.(check bool) "entry written to disk" true
        (st.Flow.Cache.disk_writes >= 1))

(* --- the replicate footgun --------------------------------------------------- *)

let shared_state_code = function
  | Ocapi_error.Error e -> e.Ocapi_error.e_code = Ocapi_error.Shared_state
  | _ -> false

let test_replicate_returns_campaign_rejected () =
  let sys = tiny () in
  match
    Flow.engine_disagreements ~domains:2 ~replicate:(fun () -> sys) sys
      ~cycles:8
  with
  | _ -> Alcotest.fail "expected Shared_state error"
  | exception e ->
    Alcotest.(check bool)
      "structured Shared_state error" true (shared_state_code e)

let test_replicate_live_session_rejected () =
  let sys = tiny () in
  let replica = tiny () in
  let module E = (val Ocapi_engine.get "compiled") in
  let ses = E.make replica in
  Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
      match
        Ocapi_fault.seu_campaign ~runs:4 ~domains:2
          ~replicate:(fun () -> replica)
          sys ~cycles:8
      with
      | _ -> Alcotest.fail "expected Shared_state error"
      | exception e ->
        Alcotest.(check bool)
          "session-owned replica rejected" true (shared_state_code e))

let suite =
  [
    Alcotest.test_case "digest: built twice, equal" `Quick
      test_digest_built_twice_equal;
    Alcotest.test_case "digest: instance-counter independent" `Quick
      test_digest_instance_counter_independent;
    Alcotest.test_case "digest: wordlength sensitive" `Quick
      test_digest_wordlength_sensitive;
    Alcotest.test_case "digest: topology sensitive" `Quick
      test_digest_topology_sensitive;
    Alcotest.test_case "registry names and aliases" `Quick
      test_registry_names_and_aliases;
    Alcotest.test_case "unknown engine is a structured error" `Quick
      test_unknown_engine_structured_error;
    Alcotest.test_case "sessions mark and release their system" `Quick
      test_session_attach_detach;
    Alcotest.test_case "cache: warm = cold on all engines" `Quick
      test_cache_warm_identical_all_engines;
    Alcotest.test_case "cache: key discriminates" `Quick
      test_cache_key_discriminates;
    Alcotest.test_case "cache: disk round-trip" `Quick
      test_cache_disk_roundtrip;
    Alcotest.test_case "replicate: campaign system rejected" `Quick
      test_replicate_returns_campaign_rejected;
    Alcotest.test_case "replicate: live session rejected" `Quick
      test_replicate_live_session_rejected;
  ]
