(* Equivalence tests across the simulation engines: interpreted
   three-phase scheduler, compiled closure program, event-driven RTL —
   plus the emitted standalone OCaml simulator. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

(* A two-component system with both combinational flow-through and
   registered state, plus a ROM. *)
let rich_system seed =
  let table =
    Signal.Rom.create (Printf.sprintf "rich_rom_%d" seed) s8
      (Array.init 16 (fun i -> Fixed.of_int s8 ((i * 7 mod 21) - 10)))
  in
  let acc = Signal.Reg.create clk (Printf.sprintf "rich_acc_%d" seed) s8 in
  let phase = Signal.Reg.create clk (Printf.sprintf "rich_ph_%d" seed) Fixed.bit_format in
  let front =
    Sfg.build "front_active" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        let idx =
          Signal.resize (Fixed.unsigned ~width:4 ~frac:0)
            Signal.(x &: consti s8 15)
        in
        let v = Signal.(rom table idx +: reg_q acc) in
        Sfg.Builder.output b "mid" (Signal.resize ~overflow:Fixed.Saturate s8 v);
        Sfg.Builder.assign_resized b acc Signal.(x -: reg_q acc);
        Sfg.Builder.assign b phase Signal.(~:(reg_q phase)))
  in
  let front_alt =
    Sfg.build "front_idle" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "mid"
          (Signal.resize s8 Signal.(x +: consti s8 1));
        Sfg.Builder.assign b phase Signal.(~:(reg_q phase)))
  in
  let f1 = Fsm.create "front_ctl" in
  let a = Fsm.initial f1 "a" and b = Fsm.state f1 "b" in
  Fsm.(a |-- cnd (Signal.reg_q phase) |+ front_alt |-> b);
  Fsm.(a |-- always |+ front |-> a);
  Fsm.(b |-- always |+ front |-> a);
  let acc2 = Signal.Reg.create clk (Printf.sprintf "rich_acc2_%d" seed) s8 in
  let back =
    Sfg.build "back_step" (fun b ->
        let m = Sfg.Builder.input b "m" s8 in
        let v = Signal.(m *: consti s8 3) in
        Sfg.Builder.output b "y"
          (Signal.resize ~round:Fixed.Round_nearest ~overflow:Fixed.Saturate s8
             (Signal.shift_right v 1));
        Sfg.Builder.assign_resized b acc2 Signal.(m +: reg_q acc2);
        Sfg.Builder.output b "state" (Signal.resize s8 (Signal.reg_q acc2)))
  in
  let f2 = Fsm.create "back_ctl" in
  let s0 = Fsm.initial f2 "s0" in
  Fsm.(s0 |-- always |+ back |-> s0);
  let sys = Cycle_system.create (Printf.sprintf "rich_%d" seed) in
  let c1 = Cycle_system.add_timed sys "front" f1 in
  let c2 = Cycle_system.add_timed sys "back" f2 in
  let rng = Random.State.make [| seed |] in
  let stimuli = Array.init 64 (fun _ -> Fixed.of_int s8 (Random.State.int rng 200 - 100)) in
  let stim =
    Cycle_system.add_input sys "x_in" s8 (fun c -> Some stimuli.(c mod 64))
  in
  let p_y = Cycle_system.add_output sys "y_out" in
  let p_state = Cycle_system.add_output sys "state_out" in
  ignore (Cycle_system.connect sys (stim, "out") [ (c1, "x") ]);
  ignore (Cycle_system.connect sys (c1, "mid") [ (c2, "m") ]);
  ignore (Cycle_system.connect sys (c2, "y") [ (p_y, "in") ]);
  ignore (Cycle_system.connect sys (c2, "state") [ (p_state, "in") ]);
  sys

let histories_equal h1 h2 =
  List.length h1 = List.length h2
  && List.for_all2
       (fun (p1, l1) (p2, l2) ->
         p1 = p2
         && List.length l1 = List.length l2
         && List.for_all2
              (fun (c1, v1) (c2, v2) -> c1 = c2 && Fixed.equal v1 v2)
              l1 l2)
       h1 h2

let test_compiled_equivalence () =
  for seed = 1 to 5 do
    let sys = rich_system seed in
    let interp = Flow.simulate sys ~cycles:50 in
    let compiled = Flow.simulate ~engine:"compiled" sys ~cycles:50 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true
      (histories_equal interp compiled)
  done

let test_rtl_equivalence () =
  for seed = 6 to 9 do
    let sys = rich_system seed in
    let interp = Flow.simulate sys ~cycles:40 in
    let rtl = Flow.simulate ~engine:"rtl" sys ~cycles:40 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d" seed)
      true (histories_equal interp rtl)
  done

let test_engines_agree_helper () =
  let sys = rich_system 42 in
  Alcotest.(check (list string)) "no disagreement" []
    (Flow.engines_agree sys ~cycles:40)

let test_compiled_reset () =
  let sys = rich_system 77 in
  Cycle_system.reset sys;
  let prog = Compiled_sim.compile sys in
  Compiled_sim.run prog 30;
  let first = Compiled_sim.output_history prog "y_out" in
  Compiled_sim.reset prog;
  Compiled_sim.run prog 30;
  let second = Compiled_sim.output_history prog "y_out" in
  Alcotest.(check bool) "reset reproduces" true
    (List.for_all2
       (fun (c1, v1) (c2, v2) -> c1 = c2 && Fixed.equal v1 v2)
       first second);
  Alcotest.(check bool) "has slots" true (Compiled_sim.slot_count prog > 10);
  Alcotest.(check bool) "has statements" true
    (Compiled_sim.statement_count prog > 10)

let test_compiled_rejects_component_cycle () =
  (* Combinational component cycle at the static schedule's granularity. *)
  let mk name =
    let sfg =
      Sfg.build (name ^ "_f") (fun b ->
          let x = Sfg.Builder.input b "x" s8 in
          Sfg.Builder.output b "y" (Signal.resize s8 Signal.(x +: consti s8 1)))
    in
    let fsm = Fsm.create (name ^ "_c") in
    let s0 = Fsm.initial fsm "s0" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    fsm
  in
  let sys = Cycle_system.create "cycle_reject" in
  let a = Cycle_system.add_timed sys "ca" (mk "ca") in
  let b = Cycle_system.add_timed sys "cb" (mk "cb") in
  ignore (Cycle_system.connect sys (a, "y") [ (b, "x") ]);
  ignore (Cycle_system.connect sys (b, "y") [ (a, "x") ]);
  match Compiled_sim.compile sys with
  | exception Compiled_sim.Unsupported _ -> ()
  | _ -> Alcotest.fail "component cycle accepted"

let test_rtl_stats_and_size () =
  let sys = rich_system 13 in
  Cycle_system.reset sys;
  let rtl = Rtl.of_system sys in
  Rtl.reset rtl;
  Rtl.run rtl 20;
  let st = Rtl.stats rtl in
  Alcotest.(check bool) "deltas happened" true (st.Rtl.deltas > 20);
  Alcotest.(check bool) "events happened" true (st.Rtl.events > 20);
  Alcotest.(check bool) "activations happened" true (st.Rtl.activations > 20);
  Alcotest.(check bool) "signals exist" true (Rtl.signal_count rtl > 5);
  Alcotest.(check bool) "processes exist" true (Rtl.process_count rtl >= 4);
  Cycle_system.reset sys

(* The emitted standalone simulator compiles with ocamlfind/ocamlopt and
   prints exactly the probe stream of the in-process engines.  Skipped
   when no compiler is on PATH (the toolchain-less CI job runs the
   suite that way on purpose: only the dynlinking native engine has a
   fallback ladder — this test has nothing to degrade to). *)
let compiler_on_path () =
  Sys.command "command -v ocamlfind >/dev/null 2>&1 || command -v ocamlopt >/dev/null 2>&1"
  = 0

let test_emitted_simulator_end_to_end () =
  if not (compiler_on_path ()) then Alcotest.skip ();
  let sys = rich_system 21 in
  let cycles = 25 in
  let interp = Flow.simulate sys ~cycles in
  Cycle_system.reset sys;
  let src = Compiled_sim.emit_ocaml sys ~cycles in
  let dir = Filename.temp_file "ocapi_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let ml = Filename.concat dir "sim.ml" in
  let oc = open_out ml in
  output_string oc src;
  close_out oc;
  let exe = Filename.concat dir "sim.exe" in
  let rc =
    Sys.command
      (Printf.sprintf "ocamlfind ocamlopt -package unix %s -o %s >/dev/null 2>&1 || ocamlopt %s -o %s >/dev/null 2>&1"
         ml exe ml exe)
  in
  if rc <> 0 then Alcotest.fail "emitted simulator failed to compile";
  let ic = Unix.open_process_in exe in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let lines = List.rev !lines in
  (* Build the expected line set from the interpreted histories. *)
  let expected =
    List.concat_map
      (fun (p, hist) ->
        List.map
          (fun (c, v) -> Printf.sprintf "%d %s %Ld" c p (Fixed.mantissa v))
          hist)
      interp
    |> List.sort compare
  in
  Alcotest.(check (list string)) "emitted output matches" expected
    (List.sort compare lines)

let suite =
  [
    Alcotest.test_case "compiled == interpreted (5 seeds)" `Quick
      test_compiled_equivalence;
    Alcotest.test_case "rtl == interpreted (4 seeds)" `Quick test_rtl_equivalence;
    Alcotest.test_case "engines_agree helper" `Quick test_engines_agree_helper;
    Alcotest.test_case "compiled reset reproduces" `Quick test_compiled_reset;
    Alcotest.test_case "compiled rejects component cycles" `Quick
      test_compiled_rejects_component_cycle;
    Alcotest.test_case "rtl stats and size" `Quick test_rtl_stats_and_size;
    Alcotest.test_case "emitted simulator end-to-end" `Slow
      test_emitted_simulator_end_to_end;
  ]

(* Property: randomized expression DAGs (mux/logic/resize-heavy, with
   shared subexpressions) behave identically under the interpreted and
   compiled engines.  This guards the block-A/B classification logic:
   a short-circuit bug there once put input-dependent nodes in the
   token-production block, reading stale values. *)
let random_system_property =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 1_000_000 in
      return seed)
  in
  let arb = QCheck.make ~print:string_of_int gen in
  QCheck.Test.make ~name:"random DAG: compiled == interpreted" ~count:60 arb
    (fun seed ->
      let rng = Random.State.make [| seed; 0xabcd |] in
      let fresh = Printf.sprintf "rnd%d_%d" seed in
      let inputs =
        Array.init 2 (fun i ->
            Signal.Input.create
              (Printf.sprintf "in%d" i)
              (Fixed.signed ~width:6 ~frac:2))
      in
      let regs =
        Array.init 2 (fun i ->
            Signal.Reg.create clk (fresh i) (Fixed.signed ~width:6 ~frac:2))
      in
      let expr =
        QCheck.Gen.generate1
          ~rand:(Random.State.make [| seed |])
          (Gen.expr_gen ~inputs ~regs 4)
      in
      let out_fmt = Fixed.signed ~width:10 ~frac:3 in
      let sfg =
        Sfg.build (fresh 77) (fun b ->
            Array.iter (fun i -> ignore (Sfg.Builder.input_port b i)) inputs;
            Sfg.Builder.output b "y"
              (Signal.resize ~overflow:Fixed.Saturate out_fmt expr);
            Array.iter
              (fun r ->
                Sfg.Builder.assign_resized b r
                  (Signal.resize ~overflow:Fixed.Saturate
                     (Signal.Reg.fmt r) expr))
              regs)
      in
      let fsm = Fsm.create (fresh 88) in
      let s0 = Fsm.initial fsm "s0" in
      Fsm.(s0 |-- always |+ sfg |-> s0);
      let sys = Cycle_system.create (fresh 99) in
      let c = Cycle_system.add_timed sys "c" fsm in
      let in_fmt = Fixed.signed ~width:6 ~frac:2 in
      let stim i =
        Cycle_system.add_input sys
          (Printf.sprintf "stim%d" i)
          in_fmt
          (fun cyc ->
            let r = Random.State.make [| seed; i; cyc |] in
            ignore rng;
            Some (Fixed.create in_fmt (Int64.of_int (Random.State.int r 63 - 31))))
      in
      let s0i = stim 0 and s1i = stim 1 in
      let probe = Cycle_system.add_output sys "y_out" in
      ignore (Cycle_system.connect sys (s0i, "out") [ (c, "in0") ]);
      ignore (Cycle_system.connect sys (s1i, "out") [ (c, "in1") ]);
      ignore (Cycle_system.connect sys (c, "y") [ (probe, "in") ]);
      let interp = Flow.simulate sys ~cycles:20 in
      let compiled = Flow.simulate ~engine:"compiled" sys ~cycles:20 in
      histories_equal interp compiled)

(* The same property against the event-driven RT engine. *)
let random_system_rtl_property =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000) in
  QCheck.Test.make ~name:"random DAG: rtl == interpreted" ~count:25 arb
    (fun seed ->
      let fresh = Printf.sprintf "rtl%d_%d" seed in
      let in_fmt = Fixed.signed ~width:6 ~frac:2 in
      let inputs =
        Array.init 2 (fun i -> Signal.Input.create (Printf.sprintf "in%d" i) in_fmt)
      in
      let regs = Array.init 2 (fun i -> Signal.Reg.create clk (fresh i) in_fmt) in
      let expr =
        QCheck.Gen.generate1
          ~rand:(Random.State.make [| seed; 17 |])
          (Gen.expr_gen ~inputs ~regs 3)
      in
      let out_fmt = Fixed.signed ~width:10 ~frac:3 in
      let sfg =
        Sfg.build (fresh 77) (fun b ->
            Array.iter (fun i -> ignore (Sfg.Builder.input_port b i)) inputs;
            Sfg.Builder.output b "y"
              (Signal.resize ~overflow:Fixed.Saturate out_fmt expr);
            Array.iter
              (fun r ->
                Sfg.Builder.assign_resized b r
                  (Signal.resize ~overflow:Fixed.Saturate (Signal.Reg.fmt r) expr))
              regs)
      in
      let fsm = Fsm.create (fresh 88) in
      let s0 = Fsm.initial fsm "s0" in
      Fsm.(s0 |-- always |+ sfg |-> s0);
      let sys = Cycle_system.create (fresh 99) in
      let c = Cycle_system.add_timed sys "c" fsm in
      let stim i =
        Cycle_system.add_input sys (Printf.sprintf "stim%d" i) in_fmt
          (fun cyc ->
            let r = Random.State.make [| seed; i; cyc |] in
            Some (Fixed.create in_fmt (Int64.of_int (Random.State.int r 63 - 31))))
      in
      let s0i = stim 0 and s1i = stim 1 in
      let probe = Cycle_system.add_output sys "y_out" in
      ignore (Cycle_system.connect sys (s0i, "out") [ (c, "in0") ]);
      ignore (Cycle_system.connect sys (s1i, "out") [ (c, "in1") ]);
      ignore (Cycle_system.connect sys (c, "y") [ (probe, "in") ]);
      let interp = Flow.simulate sys ~cycles:12 in
      let rtl = Flow.simulate ~engine:"rtl" sys ~cycles:12 in
      histories_equal interp rtl)

(* The same property through synthesis: the gate engine simulates the
   synthesized netlist of the random system, so this is a differential
   sweep of the whole lowering chain — wordgen arithmetic, controller
   encoding and the probe-valid wires — against the interpreter. *)
let random_system_gate_property =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000) in
  QCheck.Test.make ~name:"random DAG: gate == interpreted" ~count:20 arb
    (fun seed ->
      let fresh = Printf.sprintf "gate%d_%d" seed in
      let in_fmt = Fixed.signed ~width:6 ~frac:2 in
      let inputs =
        Array.init 2 (fun i -> Signal.Input.create (Printf.sprintf "in%d" i) in_fmt)
      in
      let regs = Array.init 2 (fun i -> Signal.Reg.create clk (fresh i) in_fmt) in
      let expr =
        QCheck.Gen.generate1
          ~rand:(Random.State.make [| seed; 23 |])
          (Gen.expr_gen ~inputs ~regs 3)
      in
      let out_fmt = Fixed.signed ~width:10 ~frac:3 in
      let sfg =
        Sfg.build (fresh 77) (fun b ->
            Array.iter (fun i -> ignore (Sfg.Builder.input_port b i)) inputs;
            Sfg.Builder.output b "y"
              (Signal.resize ~overflow:Fixed.Saturate out_fmt expr);
            Array.iter
              (fun r ->
                Sfg.Builder.assign_resized b r
                  (Signal.resize ~overflow:Fixed.Saturate (Signal.Reg.fmt r) expr))
              regs)
      in
      let fsm = Fsm.create (fresh 88) in
      let s0 = Fsm.initial fsm "s0" in
      Fsm.(s0 |-- always |+ sfg |-> s0);
      let sys = Cycle_system.create (fresh 99) in
      let c = Cycle_system.add_timed sys "c" fsm in
      let stim i =
        Cycle_system.add_input sys (Printf.sprintf "stim%d" i) in_fmt
          (fun cyc ->
            let r = Random.State.make [| seed; i; cyc |] in
            Some (Fixed.create in_fmt (Int64.of_int (Random.State.int r 63 - 31))))
      in
      let s0i = stim 0 and s1i = stim 1 in
      let probe = Cycle_system.add_output sys "y_out" in
      ignore (Cycle_system.connect sys (s0i, "out") [ (c, "in0") ]);
      ignore (Cycle_system.connect sys (s1i, "out") [ (c, "in1") ]);
      ignore (Cycle_system.connect sys (c, "y") [ (probe, "in") ]);
      let interp = Flow.simulate sys ~cycles:12 in
      let gate = Flow.simulate ~engine:"gate" sys ~cycles:12 in
      histories_equal interp gate)

(* Chains of two components with a combinational cross-component path:
   the front's input-dependent output feeds the back's logic within the
   same cycle, exercising the inter-component part of the static
   compiled schedule. *)
let random_chain_property =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000) in
  QCheck.Test.make ~name:"random 2-component chain: compiled == interpreted"
    ~count:40 arb (fun seed ->
      let fresh = Printf.sprintf "chain%d_%d" seed in
      let in_fmt = Fixed.signed ~width:6 ~frac:2 in
      let mid_fmt = Fixed.signed ~width:9 ~frac:3 in
      let make_comp tag n_inputs out_fmt depth_seed =
        let inputs =
          Array.init n_inputs (fun i ->
              Signal.Input.create (Printf.sprintf "i%d" i)
                (if tag = "front" then in_fmt else mid_fmt))
        in
        let regs =
          Array.init 2 (fun i ->
              Signal.Reg.create clk (fresh (depth_seed + i)) in_fmt)
        in
        let expr =
          QCheck.Gen.generate1
            ~rand:(Random.State.make [| seed; depth_seed |])
            (Gen.expr_gen ~inputs ~regs 3)
        in
        let sfg =
          Sfg.build (fresh (depth_seed + 50)) (fun b ->
              Array.iter (fun i -> ignore (Sfg.Builder.input_port b i)) inputs;
              Sfg.Builder.output b "o"
                (Signal.resize ~overflow:Fixed.Saturate out_fmt expr);
              Array.iter
                (fun r ->
                  Sfg.Builder.assign_resized b r
                    (Signal.resize ~overflow:Fixed.Saturate (Signal.Reg.fmt r)
                       expr))
                regs)
        in
        let fsm = Fsm.create (fresh (depth_seed + 60)) in
        let s0 = Fsm.initial fsm "s0" in
        Fsm.(s0 |-- always |+ sfg |-> s0);
        fsm
      in
      let front = make_comp "front" 2 mid_fmt 100 in
      let back = make_comp "back" 1 (Fixed.signed ~width:10 ~frac:2) 200 in
      let sys = Cycle_system.create (fresh 999) in
      let c1 = Cycle_system.add_timed sys "front" front in
      let c2 = Cycle_system.add_timed sys "back" back in
      let stim i =
        Cycle_system.add_input sys (Printf.sprintf "stim%d" i) in_fmt
          (fun cyc ->
            let r = Random.State.make [| seed; i; cyc |] in
            Some (Fixed.create in_fmt (Int64.of_int (Random.State.int r 63 - 31))))
      in
      let s0i = stim 0 and s1i = stim 1 in
      let probe = Cycle_system.add_output sys "y_out" in
      ignore (Cycle_system.connect sys (s0i, "out") [ (c1, "i0") ]);
      ignore (Cycle_system.connect sys (s1i, "out") [ (c1, "i1") ]);
      ignore (Cycle_system.connect sys (c1, "o") [ (c2, "i0") ]);
      ignore (Cycle_system.connect sys (c2, "o") [ (probe, "in") ]);
      let interp = Flow.simulate sys ~cycles:16 in
      let compiled = Flow.simulate ~engine:"compiled" sys ~cycles:16 in
      histories_equal interp compiled)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest random_system_property;
      QCheck_alcotest.to_alcotest random_system_rtl_property;
      QCheck_alcotest.to_alcotest random_system_gate_property;
      QCheck_alcotest.to_alcotest random_chain_property;
    ]
