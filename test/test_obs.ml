(* Tests for the Ocapi_obs telemetry library: deterministic counter and
   histogram semantics, Chrome trace-event JSON well-formedness, and the
   guarantee that instrumentation never changes simulation results. *)

let s8 = Fixed.signed ~width:8 ~frac:0

(* A minimal JSON well-formedness checker (recursive descent over the
   grammar); the repo deliberately has no JSON dependency, so the
   emitter is validated against an independent reading of the spec. *)
let json_well_formed text =
  let n = String.length text in
  let pos = ref 0 in
  let fail = ref false in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos else fail := true
  in
  let literal s =
    let l = String.length s in
    if !pos + l <= n && String.sub text !pos l = s then pos := !pos + l
    else fail := true
  in
  let string_ () =
    expect '"';
    let closed = ref false in
    while (not !closed) && (not !fail) && !pos < n do
      match text.[!pos] with
      | '"' ->
        incr pos;
        closed := true
      | '\\' ->
        incr pos;
        if !pos >= n then fail := true
        else (
          (match text.[!pos] with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
          | 'u' ->
            for _ = 1 to 4 do
              incr pos;
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
              | _ -> fail := true
            done
          | _ -> fail := true);
          incr pos)
      | c when Char.code c < 0x20 -> fail := true
      | _ -> incr pos
    done;
    if not !closed then fail := true
  in
  let number () =
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while !pos < n && is_num text.[!pos] do
      incr pos
    done;
    if !pos = start then fail := true
    else
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some _ -> ()
      | None -> fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      (match peek () with
      | Some '"' -> string_ ()
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let continue = ref true in
          while !continue && not !fail do
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some '}' ->
              incr pos;
              continue := false
            | _ ->
              fail := true;
              continue := false
          done
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let continue = ref true in
          while !continue && not !fail do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some ']' ->
              incr pos;
              continue := false
            | _ ->
              fail := true;
              continue := false
          done
        end
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some _ -> number ()
      | None -> fail := true)
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

(* A small self-contained design: an accumulator over a ramp input. *)
let mini_system () =
  let clk = Clock.default in
  let acc = Signal.Reg.create clk "obs_acc" s8 in
  let sfg =
    Sfg.build "obs_step" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        Sfg.Builder.output b "y"
          (Signal.resize s8 Signal.(reg_q acc +: x));
        Sfg.Builder.assign_resized b acc Signal.(reg_q acc +: x))
  in
  let fsm = Fsm.create "obs_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "obs_mini" in
  let t = Cycle_system.add_timed sys "comp" fsm in
  let inp =
    Cycle_system.add_input sys "x" s8 (fun c -> Some (Fixed.of_int s8 (c mod 5)))
  in
  let out = Cycle_system.add_output sys "y" in
  ignore (Cycle_system.connect sys (inp, "out") [ (t, "x") ]);
  ignore (Cycle_system.connect sys (t, "y") [ (out, "in") ]);
  sys

let test_counters () =
  Ocapi_obs.reset ();
  Ocapi_obs.count "t.a";
  Alcotest.(check (list (pair string string)))
    "disabled counting is a no-op" []
    (List.map
       (fun (k, _) -> (k, ""))
       (Ocapi_obs.snapshot ()));
  Ocapi_obs.enable ();
  Ocapi_obs.count "t.a";
  Ocapi_obs.count "t.a";
  Ocapi_obs.count ~n:40 "t.a";
  Ocapi_obs.count "t.b";
  Ocapi_obs.set_gauge "t.g" 2.5;
  Ocapi_obs.max_gauge "t.g" 7.0;
  Ocapi_obs.max_gauge "t.g" 3.0;
  let snap = Ocapi_obs.snapshot () in
  (match List.assoc "t.a" snap with
  | Ocapi_obs.Counter_v v -> Alcotest.(check int) "t.a" 42 v
  | _ -> Alcotest.fail "t.a not a counter");
  (match List.assoc "t.b" snap with
  | Ocapi_obs.Counter_v v -> Alcotest.(check int) "t.b" 1 v
  | _ -> Alcotest.fail "t.b not a counter");
  (match List.assoc "t.g" snap with
  | Ocapi_obs.Gauge_v v -> Alcotest.(check (float 0.0)) "t.g keeps max" 7.0 v
  | _ -> Alcotest.fail "t.g not a gauge");
  (* snapshot is sorted by name: deterministic output. *)
  Alcotest.(check (list string))
    "sorted keys" [ "t.a"; "t.b"; "t.g" ]
    (List.map fst snap);
  Ocapi_obs.reset ()

let test_histogram () =
  Ocapi_obs.reset ();
  Ocapi_obs.enable ();
  let buckets = [| 1.0; 10.0; 100.0 |] in
  List.iter
    (fun v -> Ocapi_obs.observe ~buckets "t.h" v)
    [ 0.5; 1.0; 5.0; 50.0; 5000.0 ];
  (match List.assoc "t.h" (Ocapi_obs.snapshot ()) with
  | Ocapi_obs.Histogram_v h ->
    Alcotest.(check int) "count" 5 h.Ocapi_obs.hs_count;
    Alcotest.(check (float 1e-9)) "sum" 5056.5 h.Ocapi_obs.hs_sum;
    Alcotest.(check (float 0.0)) "min" 0.5 h.Ocapi_obs.hs_min;
    Alcotest.(check (float 0.0)) "max" 5000.0 h.Ocapi_obs.hs_max;
    (* cumulative "<=" buckets, plus an overflow bucket at +inf *)
    Alcotest.(check (list int))
      "bucket counts" [ 2; 1; 1; 1 ]
      (List.map snd h.Ocapi_obs.hs_buckets)
  | _ -> Alcotest.fail "t.h not a histogram");
  Ocapi_obs.reset ()

let test_trace_json () =
  Ocapi_obs.reset ();
  Ocapi_obs.enable ();
  let t0 = Ocapi_obs.span_begin () in
  Ocapi_obs.span_end ~cat:"test"
    ~args:[ ("tricky \"name\"\n", Ocapi_obs.Json.String "a\\b\twith\x01ctrl") ]
    "outer" t0;
  Ocapi_obs.with_span "inner" (fun () -> ());
  Ocapi_obs.instant "marker";
  Alcotest.(check int) "three events" 3 (Ocapi_obs.event_count ());
  let text = Ocapi_obs.trace_json () in
  Alcotest.(check bool) "trace json well-formed" true (json_well_formed text);
  let metrics = Ocapi_obs.Json.to_string (Ocapi_obs.metrics_json ()) in
  Alcotest.(check bool) "metrics json well-formed" true
    (json_well_formed metrics);
  (* Non-finite floats must not leak bare nan/inf tokens into JSON. *)
  let weird =
    Ocapi_obs.Json.to_string
      (Ocapi_obs.Json.List
         [ Ocapi_obs.Json.Float Float.nan; Ocapi_obs.Json.Float infinity ])
  in
  Alcotest.(check string) "non-finite floats are null" "[null,null]" weird;
  Ocapi_obs.clear_trace ();
  Alcotest.(check int) "cleared" 0 (Ocapi_obs.event_count ());
  Ocapi_obs.reset ()

(* 1-in-N span sampling: per name, the first span is kept, the next
   N-1 are dropped (and counted), independently of other names. *)
let test_span_sampling () =
  Ocapi_obs.reset ();
  Ocapi_obs.enable ();
  Ocapi_obs.set_span_sampling 4;
  Alcotest.(check int) "factor readable" 4 (Ocapi_obs.span_sampling_factor ());
  for _ = 1 to 10 do
    Ocapi_obs.with_span "sampled.a" (fun () -> ())
  done;
  Ocapi_obs.with_span "sampled.b" (fun () -> ());
  (* a: spans 1, 5 and 9 kept; b: its own counter, first span kept *)
  Alcotest.(check int) "kept 1-in-4 per name" 4 (Ocapi_obs.event_count ());
  Alcotest.(check int) "dropped spans counted" 7
    (Ocapi_obs.sampled_out_spans ());
  Ocapi_obs.clear_trace ();
  (* clear_trace restarts the per-name counters *)
  Ocapi_obs.with_span "sampled.a" (fun () -> ());
  Alcotest.(check int) "counters restart after clear" 1
    (Ocapi_obs.event_count ());
  (match Ocapi_obs.set_span_sampling 0 with
  | () -> Alcotest.fail "factor 0 accepted"
  | exception Invalid_argument _ -> ());
  Ocapi_obs.set_span_sampling 1;
  Ocapi_obs.reset ()

let test_disabled_spans_are_free () =
  Ocapi_obs.reset ();
  let t0 = Ocapi_obs.span_begin () in
  Ocapi_obs.span_end "never" t0;
  Ocapi_obs.instant "never";
  Alcotest.(check int) "no events recorded" 0 (Ocapi_obs.event_count ());
  Alcotest.(check bool) "span_begin is nan when disabled" true
    (Float.is_nan t0)

let histories_equal = Alcotest.(check bool) "histories equal" true

let test_instrumented_equals_plain () =
  let sys = mini_system () in
  let cycles = 40 in
  let plain_i = Flow.simulate sys ~cycles in
  let plain_c = Flow.simulate ~engine:"compiled" sys ~cycles in
  let plain_r = Flow.simulate ~engine:"rtl" sys ~cycles in
  let cell = ref None in
  let tele_i = Flow.simulate ~telemetry:cell sys ~cycles in
  (match !cell with
  | Some rp ->
    (match List.assoc_opt "sched.cycles" rp.Ocapi_obs.rp_metrics with
    | Some (Ocapi_obs.Counter_v n) -> Alcotest.(check int) "cycles" cycles n
    | _ -> Alcotest.fail "sched.cycles missing")
  | None -> Alcotest.fail "no interp report");
  let tele_c = Flow.simulate ~engine:"compiled" ~telemetry:cell sys ~cycles in
  (match !cell with
  | Some rp ->
    (match List.assoc_opt "compiled.steps" rp.Ocapi_obs.rp_metrics with
    | Some (Ocapi_obs.Counter_v n) -> Alcotest.(check int) "steps" cycles n
    | _ -> Alcotest.fail "compiled.steps missing")
  | None -> Alcotest.fail "no compiled report");
  let tele_r = Flow.simulate ~engine:"rtl" ~telemetry:cell sys ~cycles in
  histories_equal (Flow.first_history_mismatch plain_i tele_i = None);
  histories_equal (Flow.first_history_mismatch plain_c tele_c = None);
  histories_equal (Flow.first_history_mismatch plain_r tele_r = None);
  (* Telemetry scope is popped: back to disabled. *)
  Alcotest.(check bool) "disabled after scope" false (Ocapi_obs.enabled ());
  Ocapi_obs.reset ()

let test_first_history_mismatch () =
  let h v = [ (0, Fixed.of_int s8 1); (1, Fixed.of_int s8 v) ] in
  Alcotest.(check bool)
    "equal histories" true
    (Flow.first_history_mismatch [ ("p", h 2) ] [ ("p", h 2) ] = None);
  (match Flow.first_history_mismatch [ ("p", h 2) ] [ ("p", h 3) ] with
  | Some (probe, Some cyc, _) ->
    Alcotest.(check string) "probe" "p" probe;
    Alcotest.(check int) "cycle" 1 cyc
  | _ -> Alcotest.fail "expected a value mismatch");
  (match
     Flow.first_history_mismatch
       [ ("p", h 2) ]
       [ ("p", [ (0, Fixed.of_int s8 1) ]) ]
   with
  | Some (_, Some 1, _) -> ()
  | _ -> Alcotest.fail "expected a truncated-history mismatch");
  let sys = mini_system () in
  Alcotest.(check (list string))
    "engines agree on mini design" []
    (Flow.engines_agree sys ~cycles:30)

let test_vcd_engines () =
  let sys = mini_system () in
  let reference = Flow.simulate sys ~cycles:20 in
  List.iter
    (fun engine ->
      let text = Vcd.record ~engine sys ~cycles:20 in
      Alcotest.(check bool) "has header" true
        (String.length text > 0 && String.sub text 0 8 = "$comment");
      let has needle =
        let nh = String.length text and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "declares wires" true (has "$var wire");
      Alcotest.(check bool) "has value changes" true (has "#0\n");
      (* Recording a VCD must not corrupt subsequent simulation. *)
      Alcotest.(check bool)
        "simulation unchanged after vcd" true
        (Flow.first_history_mismatch reference (Flow.simulate sys ~cycles:20)
        = None))
    [ Vcd.Interp; Vcd.Compiled; Vcd.Rtl_engine ]

let test_run_with_telemetry_report () =
  Ocapi_obs.reset ();
  let result, report =
    Ocapi_obs.run_with_telemetry ~label:"unit" (fun () ->
        Ocapi_obs.count ~n:3 "t.x";
        Ocapi_obs.with_span "work" (fun () -> 17))
  in
  Alcotest.(check int) "result passes through" 17 result;
  Alcotest.(check string) "label" "unit" report.Ocapi_obs.rp_label;
  Alcotest.(check bool) "wall time non-negative" true
    (report.Ocapi_obs.rp_seconds >= 0.0);
  Alcotest.(check int) "one span" 1 report.Ocapi_obs.rp_events;
  let json = Ocapi_obs.Json.to_string (Ocapi_obs.report_json report) in
  Alcotest.(check bool) "report json well-formed" true (json_well_formed json);
  Ocapi_obs.reset ()

(* The parser is the read half of the Json module: everything the
   emitter writes must come back structurally identical, and junk must
   be a structured [Error], never an exception. *)
let test_json_of_string_roundtrip () =
  let open Ocapi_obs.Json in
  let v =
    Obj
      [
        ("a", Int 1);
        ("b", List [ Null; Bool true; Bool false; Float 1.5; Int (-3) ]);
        ("s", String "quote \" slash \\ control \n\t end");
        ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
      ]
  in
  (match of_string (to_string v) with
  | Ok v' -> Alcotest.(check string) "round trip" (to_string v) (to_string v')
  | Error e -> Alcotest.fail ("emitter output rejected: " ^ e));
  (match of_string "  { \"x\" : [ 1 , 2.25 ] }  " with
  | Ok v' ->
    Alcotest.(check string) "whitespace tolerated" {|{"x":[1,2.25]}|}
      (to_string v')
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* Error paths the round-trip test can't reach: truncation at every
   prefix, malformed escapes, duplicate object keys, and the
   recursion-depth cap — each must be a structured [Error], never an
   exception or a silent acceptance. *)
let test_json_error_paths () =
  let open Ocapi_obs.Json in
  let expect_error what s =
    match of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%s: accepted %S" what s)
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error message non-empty" what)
        true
        (String.length e > 0)
  in
  (* The document opens with [{], so every strict prefix is
     unterminated and must be rejected. *)
  let doc = {|{"a":[1,true,"x\n"],"b":{"c":null}}|} in
  for n = 1 to String.length doc - 1 do
    expect_error "truncated" (String.sub doc 0 n)
  done;
  List.iter (expect_error "bad escape")
    [ {|"\q"|}; {|"\u12"|}; {|"\u12zx"|}; {|"a\|} ];
  expect_error "duplicate key" {|{"a":1,"a":2}|};
  expect_error "nested duplicate key" {|{"x":{"k":1,"k":1}}|};
  let deep n =
    String.concat "" [ String.make n '['; "1"; String.make n ']' ]
  in
  (match of_string (deep 200) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("depth 200 wrongly rejected: " ^ e));
  expect_error "nesting beyond the 255 cap" (deep 300)

(* Floats must print in the shortest form that parses back to the same
   bits — the ledger and event logs are diffed and deduplicated by
   byte equality, so the rendering has to be canonical. *)
let test_json_float_bytes () =
  let open Ocapi_obs.Json in
  List.iter
    (fun f ->
      let s = to_string (Float f) in
      Alcotest.(check bool)
        (Printf.sprintf "%s parses back exactly" s)
        true
        (float_of_string s = f))
    [ 0.1; 1.0 /. 3.0; 1e22; 1.5; 1786228654.348076; Float.pi; -2.5e-8 ];
  Alcotest.(check string) "0.1 stays short" "0.1" (to_string (Float 0.1));
  Alcotest.(check string) "1.5 stays short" "1.5" (to_string (Float 1.5));
  Alcotest.(check string) "pi needs 16 significant digits"
    "3.141592653589793"
    (to_string (Float Float.pi))

(* hist_quantile over the batch service's purpose-built 1-2-5 decade
   queue-wait buckets: the estimate must be monotone in q, including
   observations below the first bound and beyond the last. *)
let test_quantile_monotone_queue_buckets () =
  Ocapi_obs.reset ();
  Ocapi_obs.enable ();
  List.iter
    (fun v ->
      Ocapi_obs.observe ~buckets:Ocapi_batch.queue_wait_buckets "tq.wait" v)
    [ 0.5; 3.0; 7.0; 40.0; 150.0; 900.0; 4_000.0; 75_000.0; 2.0e6; 3.0e8 ];
  let hs =
    match List.assoc_opt "tq.wait" (Ocapi_obs.snapshot ()) with
    | Some (Ocapi_obs.Histogram_v hs) -> hs
    | _ -> Alcotest.fail "histogram not recorded"
  in
  let prev = ref neg_infinity in
  for i = 0 to 100 do
    let q = float_of_int i /. 100.0 in
    let v = Ocapi_obs.hist_quantile hs q in
    Alcotest.(check bool)
      (Printf.sprintf "quantile monotone at q=%.2f (%g >= %g)" q v !prev)
      true (v >= !prev);
    prev := v
  done;
  Ocapi_obs.reset ()

let test_json_member () =
  let open Ocapi_obs.Json in
  let v = Obj [ ("a", Int 1); ("b", String "x") ] in
  Alcotest.(check bool) "present" true (member "b" v = Some (String "x"));
  Alcotest.(check bool) "absent" true (member "c" v = None);
  Alcotest.(check bool) "non-object" true (member "a" (Int 3) = None)

let test_hist_quantile () =
  (* 100 observations spread uniformly over (0, 100]: the estimator
     must land near the true quantiles and clamp to min/max. *)
  Ocapi_obs.reset ();
  Ocapi_obs.enable ();
  for i = 1 to 100 do
    Ocapi_obs.observe "tq.lat" (float_of_int i)
  done;
  let hs =
    match List.assoc_opt "tq.lat" (Ocapi_obs.snapshot ()) with
    | Some (Ocapi_obs.Histogram_v hs) -> hs
    | _ -> Alcotest.fail "histogram not recorded"
  in
  Alcotest.(check int) "count" 100 hs.Ocapi_obs.hs_count;
  let near what expect got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.1f within 25%% of %.1f" what got expect)
      true
      (abs_float (got -. expect) <= 0.25 *. expect)
  in
  near "p50" 50.0 (Ocapi_obs.hist_quantile hs 0.5);
  near "p95" 95.0 (Ocapi_obs.hist_quantile hs 0.95);
  Alcotest.(check (float 1e-9)) "q=0 clamps to min" 1.0
    (Ocapi_obs.hist_quantile hs 0.0);
  Alcotest.(check (float 1e-9)) "q=1 clamps to max" 100.0
    (Ocapi_obs.hist_quantile hs 1.0);
  let empty =
    {
      Ocapi_obs.hs_count = 0;
      hs_sum = 0.0;
      hs_min = infinity;
      hs_max = neg_infinity;
      hs_buckets = [];
    }
  in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Ocapi_obs.hist_quantile empty 0.5));
  Ocapi_obs.reset ()

let suite =
  [
    Alcotest.test_case "counter and gauge semantics" `Quick test_counters;
    Alcotest.test_case "Json.of_string round trip" `Quick
      test_json_of_string_roundtrip;
    Alcotest.test_case "Json.of_string error paths" `Quick
      test_json_error_paths;
    Alcotest.test_case "Json float rendering is canonical" `Quick
      test_json_float_bytes;
    Alcotest.test_case "quantiles monotone over queue buckets" `Quick
      test_quantile_monotone_queue_buckets;
    Alcotest.test_case "Json.member lookup" `Quick test_json_member;
    Alcotest.test_case "hist_quantile estimation" `Quick test_hist_quantile;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "trace JSON well-formed" `Quick test_trace_json;
    Alcotest.test_case "span sampling 1-in-N" `Quick test_span_sampling;
    Alcotest.test_case "disabled path records nothing" `Quick
      test_disabled_spans_are_free;
    Alcotest.test_case "instrumented run equals plain run" `Quick
      test_instrumented_equals_plain;
    Alcotest.test_case "first_history_mismatch pinpointing" `Quick
      test_first_history_mismatch;
    Alcotest.test_case "VCD from all three engines" `Quick test_vcd_engines;
    Alcotest.test_case "run_with_telemetry report" `Quick
      test_run_with_telemetry_report;
  ]
