(* Tests for the gallery designs: the RS(15,11) Reed–Solomon
   encoder/decoder pair and the ACC accumulator-machine CPU.  Each is
   checked against an OCaml reference model, across engines, and
   through the gate-level lowering. *)

let hist sys p =
  match Cycle_system.find_component sys p with
  | Some c -> Cycle_system.output_history sys c
  | None -> []

let last_value h =
  match List.rev h with
  | (_, v) :: _ -> Fixed.to_int v
  | [] -> Alcotest.fail "empty history"

let value_at h cycle =
  match List.assoc_opt cycle h with
  | Some v -> Fixed.to_int v
  | None -> Alcotest.failf "no token at cycle %d" cycle

(* --- RS: the GF(16) reference model ---------------------------------------- *)

(* Field axioms on the exposed reference arithmetic (the same tables
   the hardware ROMs are folded from). *)
let test_rs_field_axioms () =
  for a = 0 to 15 do
    Alcotest.(check int) "x * 1 = x" a (Rs_codec.gf_mul a 1);
    Alcotest.(check int) "x * 0 = 0" 0 (Rs_codec.gf_mul a 0);
    for b = 0 to 15 do
      Alcotest.(check int) "commutative" (Rs_codec.gf_mul a b)
        (Rs_codec.gf_mul b a);
      for c = 0 to 15 do
        Alcotest.(check int) "distributive"
          (Rs_codec.gf_mul a (b lxor c))
          (Rs_codec.gf_mul a b lxor Rs_codec.gf_mul a c)
      done
    done
  done;
  (* alpha = 2 is primitive: alpha^4 = alpha + 1 under x^4 + x + 1,
     and the multiplicative order is 15. *)
  Alcotest.(check int) "alpha^4 = 3" 3 (Rs_codec.gf_pow 2 4);
  Alcotest.(check int) "alpha^15 = 1" 1 (Rs_codec.gf_pow 2 15);
  for e = 1 to 14 do
    Alcotest.(check bool)
      (Printf.sprintf "alpha^%d <> 1" e)
      true
      (Rs_codec.gf_pow 2 e <> 1)
  done

(* Evaluate a polynomial (index = power of x) at a point. *)
let poly_eval p x =
  Array.fold_right (fun c acc -> Rs_codec.gf_mul acc x lxor c) p 0

let test_rs_gen_poly_roots () =
  List.iter
    (fun t ->
      let g = Rs_codec.gen_poly t in
      Alcotest.(check int) "degree 2t" (2 * t) (Array.length g - 1);
      Alcotest.(check int) "monic" 1 g.(Array.length g - 1);
      for j = 1 to 2 * t do
        Alcotest.(check int)
          (Printf.sprintf "g(alpha^%d) = 0 (t=%d)" j t)
          0
          (poly_eval g (Rs_codec.gf_pow 2 j))
      done)
    [ 1; 2; 3 ]

(* --- RS: hardware vs reference --------------------------------------------- *)

let rs_setup ?(err_period = 0) () =
  Rs_codec.create
    ~data_stimulus:(Rs_codec.data_stimulus ())
    ~err_stimulus:(Rs_codec.err_stimulus ~period:err_period ())
    ()

(* Every transmitted block must be a true codeword: the reference
   Horner syndromes of each n-symbol "sym" block are all zero.  This
   checks the hardware LFSR encoder against the OCaml field model. *)
let test_rs_encoder_emits_codewords () =
  let rs = rs_setup () in
  let n = rs.Rs_codec.n in
  let blocks = 8 in
  Cycle_system.run rs.Rs_codec.system (blocks * n);
  let sym = hist rs.Rs_codec.system "sym" in
  for b = 0 to blocks - 1 do
    for j = 1 to 2 * ((n - rs.Rs_codec.k) / 2) do
      let s =
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc :=
            Rs_codec.gf_mul !acc (Rs_codec.gf_pow 2 j)
            lxor value_at sym ((b * n) + i)
        done;
        !acc
      in
      Alcotest.(check int)
        (Printf.sprintf "block %d syndrome S%d" b j)
        0 s
    done
  done

(* Clean channel: the decoder's error flag stays 0 forever. *)
let test_rs_clean_channel_no_error () =
  let rs = rs_setup () in
  Cycle_system.run rs.Rs_codec.system 120;
  List.iter
    (fun (c, v) ->
      if Fixed.to_int v <> 0 then
        Alcotest.failf "serr = 1 at cycle %d on a clean channel" c)
    (hist rs.Rs_codec.system "serr")

(* Corrupted channel: the default injector hits blocks 0, 3 and 6
   (cycles 7, 52, 97); the decoder must flag exactly those blocks —
   serr reflects the previous block's verdict, so the flag for block b
   shows during block b+1. *)
let test_rs_detects_injected_errors () =
  let rs = rs_setup ~err_period:45 () in
  let n = rs.Rs_codec.n in
  Cycle_system.run rs.Rs_codec.system 135;
  let serr = hist rs.Rs_codec.system "serr" in
  let flagged b =
    (* sample mid-window of block b+1, clear of the latch edges *)
    value_at serr (((b + 1) * n) + (n / 2)) <> 0
  in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d flagged" b)
        true (flagged b))
    [ 0; 3; 6 ];
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d clean" b)
        false (flagged b))
    [ 1; 2; 4; 5 ]

let test_rs_parameter_validation () =
  let mk ?k ?t () =
    Rs_codec.create ?k ?t
      ~data_stimulus:(Rs_codec.data_stimulus ())
      ~err_stimulus:(Rs_codec.err_stimulus ~period:0 ())
      ()
  in
  List.iter
    (fun (k, t) ->
      match mk ~k ~t () with
      | _ -> Alcotest.failf "k=%d t=%d accepted" k t
      | exception _ -> ())
    [ (11, 0); (11, 4); (14, 2) ]

(* --- RS: engines and levels ------------------------------------------------ *)

let rs_system () = (rs_setup ~err_period:45 ()).Rs_codec.system

let check_engines_agree name build ~cycles ~engines =
  let base = Flow.simulate ~engine:(List.hd engines) (build ()) ~cycles in
  List.iter
    (fun engine ->
      let h = Flow.simulate ~engine (build ()) ~cycles in
      match Flow.first_history_mismatch base h with
      | None -> ()
      | Some (probe, cycle, detail) ->
        Alcotest.failf "%s: %s vs %s differ at %s cycle %s: %s" name
          (List.hd engines) engine probe
          (match cycle with Some c -> string_of_int c | None -> "?")
          detail)
    (List.tl engines)

let test_rs_engines_agree () =
  check_engines_agree "rs" rs_system ~cycles:90
    ~engines:[ "interp"; "compiled"; "rtl"; "gate" ]

let check_equiv name a b ~cycles =
  match Ocapi_ir.check_equivalence ~cycles a b with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name (Ocapi_error.to_string e)

let test_rs_gate_equivalence () =
  let b = Ocapi_ir.behavioral (rs_system ()) in
  let g =
    Ocapi_ir.pipeline [ Ocapi_ir.lower_to_gate; Ocapi_ir.optimize_gates ] b
  in
  check_equiv "rs behavioral = optimized gate" b g ~cycles:90

(* --- ACC: the self-checking program ---------------------------------------- *)

let cpu_setup ?program () =
  Acc_cpu.create ?program ~io_stimulus:(Acc_cpu.io_stimulus ()) ()

(* The default ROM program sums 1..5 through the data RAM, checks the
   total against 15, publishes it and halts. *)
let test_cpu_self_check () =
  let cpu = cpu_setup () in
  let sys = cpu.Acc_cpu.system in
  Cycle_system.run sys Acc_cpu.check_cycles;
  Alcotest.(check int) "out = 15" 15 (last_value (hist sys "out"));
  Alcotest.(check int) "ok = 1" 1 (last_value (hist sys "ok"));
  (* HALT freezes the architectural state: the pc is pinned from well
     before the budget. *)
  let pc = last_value (hist sys "pc") in
  Alcotest.(check int) "pc frozen at budget + 16"
    (let cpu2 = cpu_setup () in
     Cycle_system.run cpu2.Acc_cpu.system (Acc_cpu.check_cycles + 16);
     last_value (hist cpu2.Acc_cpu.system "pc"))
    pc

(* A custom immediate-ALU program through the exposed assembler
   surface: LDI 12; XOR 5; ADD 3; CHK 12; OUT; HALT. *)
let test_cpu_custom_program () =
  let program =
    [|
      (Acc_cpu.op_ldi, 12);
      (Acc_cpu.op_xor, 5);
      (Acc_cpu.op_add, 3);
      (Acc_cpu.op_chk, 12);
      (Acc_cpu.op_out, 0);
      (Acc_cpu.op_halt, 0);
    |]
  in
  let cpu = cpu_setup ~program () in
  let sys = cpu.Acc_cpu.system in
  Cycle_system.run sys 16;
  Alcotest.(check int) "acc = (12 xor 5) + 3" 12 (last_value (hist sys "acc"));
  Alcotest.(check int) "out published" 12 (last_value (hist sys "out"));
  Alcotest.(check int) "chk passed" 1 (last_value (hist sys "ok"))

(* --- ACC: engines and levels ----------------------------------------------- *)

let cpu_system () = (cpu_setup ()).Acc_cpu.system

let test_cpu_engines_agree () =
  check_engines_agree "cpu" cpu_system ~cycles:Acc_cpu.check_cycles
    ~engines:[ "interp"; "compiled"; "rtl"; "gate" ]

let test_cpu_gate_equivalence () =
  let b = Ocapi_ir.behavioral (cpu_system ()) in
  let g =
    Ocapi_ir.pipeline [ Ocapi_ir.lower_to_gate; Ocapi_ir.optimize_gates ] b
  in
  check_equiv "cpu behavioral = optimized gate" b g
    ~cycles:Acc_cpu.check_cycles

let suite =
  [
    Alcotest.test_case "RS field axioms (GF(16))" `Quick test_rs_field_axioms;
    Alcotest.test_case "RS generator polynomial roots" `Quick
      test_rs_gen_poly_roots;
    Alcotest.test_case "RS encoder emits true codewords" `Quick
      test_rs_encoder_emits_codewords;
    Alcotest.test_case "RS clean channel: serr stays 0" `Quick
      test_rs_clean_channel_no_error;
    Alcotest.test_case "RS flags exactly the corrupted blocks" `Quick
      test_rs_detects_injected_errors;
    Alcotest.test_case "RS parameter validation" `Quick
      test_rs_parameter_validation;
    Alcotest.test_case "RS engines agree" `Slow test_rs_engines_agree;
    Alcotest.test_case "RS gate-level equivalence" `Slow
      test_rs_gate_equivalence;
    Alcotest.test_case "CPU self-check program" `Quick test_cpu_self_check;
    Alcotest.test_case "CPU custom program" `Quick test_cpu_custom_program;
    Alcotest.test_case "CPU engines agree" `Slow test_cpu_engines_agree;
    Alcotest.test_case "CPU gate-level equivalence" `Slow
      test_cpu_gate_equivalence;
  ]
