let () =
  Alcotest.run "ocapi-ml"
    [
      ("fixed", Test_fixed.suite);
      ("bitvector", Test_bitvector.suite);
      ("signal", Test_signal.suite);
      ("sfg", Test_sfg.suite);
      ("fsm", Test_fsm.suite);
      ("dataflow", Test_dataflow.suite);
      ("sched", Test_sched.suite);
      ("engines", Test_engines.suite);
      ("engine", Test_engine.suite);
      ("ir", Test_ir.suite);
      ("native", Test_native.suite);
      ("netlist", Test_netlist.suite);
      ("sop", Test_sop.suite);
      ("wordgen", Test_wordgen.suite);
      ("synth", Test_synth.suite);
      ("netopt", Test_netopt.suite);
      ("hdl", Test_hdl.suite);
      ("designs", Test_designs.suite);
      ("gallery", Test_gallery.suite);
      ("integration", Test_integration.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("opcomplete", Test_opcomplete.suite);
      ("flow", Test_flow.suite);
      ("obs", Test_obs.suite);
      ("ledger", Test_ledger.suite);
      ("fault", Test_fault.suite);
      ("parallel", Test_parallel.suite);
      ("batch", Test_batch.suite);
      ("service", Test_service.suite);
      ("diff", Test_diff.suite);
    ]
