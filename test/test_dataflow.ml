(* Tests for the untimed data-flow substrate. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let fx n = Fixed.of_int s8 n
let ints l = List.map fx l

let test_source_sink_map () =
  let g = Dataflow.create "pipe" in
  let src = Dataflow.add_process g (Dataflow.Kernel.source "src" (ints [ 1; 2; 3 ])) in
  let double =
    Dataflow.add_process g
      (Dataflow.Kernel.map1 "double" (fun v -> Fixed.resize s8 (Fixed.add v v)))
  in
  let sink_k, drained = Dataflow.Kernel.sink "sink" in
  let sink = Dataflow.add_process g sink_k in
  ignore (Dataflow.connect g (src, "out") (double, "in"));
  ignore (Dataflow.connect g (double, "out") (sink, "in"));
  let stats = Dataflow.run g in
  Alcotest.(check bool) "not deadlocked" false stats.Dataflow.deadlocked;
  Alcotest.(check (list int)) "doubled" [ 2; 4; 6 ]
    (List.map Fixed.to_int (drained ()));
  Alcotest.(check int) "nine firings" 9 stats.Dataflow.steps;
  Alcotest.(check int) "per-process counts" 3
    (List.assoc "double" stats.Dataflow.firings)

let test_firing_rule () =
  let g = Dataflow.create "rule" in
  let src = Dataflow.add_process g (Dataflow.Kernel.source "src" (ints [ 5 ])) in
  let k =
    Dataflow.Kernel.create "pairwise" ~inputs:[ ("in", 2) ] ~outputs:[ ("out", 1) ]
      (fun consumed ->
        match consumed with
        | [ ("in", [ a; b ]) ] -> [ ("out", [ Fixed.resize s8 (Fixed.add a b) ]) ]
        | _ -> Alcotest.fail "shape")
  in
  let p = Dataflow.add_process g k in
  let ch = Dataflow.connect g (src, "out") (p, "in") in
  Alcotest.(check bool) "not fireable with 0 tokens" false (Dataflow.fireable g p);
  ignore (Dataflow.run g) (* source fires once -> 1 token *);
  Alcotest.(check bool) "not fireable with 1 token" false (Dataflow.fireable g p);
  Dataflow.initial_tokens g ch [ fx 7 ];
  Alcotest.(check bool) "fireable with 2" true (Dataflow.fireable g p);
  Dataflow.fire g p;
  Alcotest.(check int) "tokens consumed" 0 (Dataflow.channel_depth g ch)

let test_fire_unsatisfied_raises () =
  let g = Dataflow.create "raise" in
  let p = Dataflow.add_process g (Dataflow.Kernel.map1 "m" Fun.id) in
  (* No channel on the input at all. *)
  match Dataflow.fire g p with
  | exception Dataflow.Dataflow_error _ -> ()
  | _ -> Alcotest.fail "fired without tokens"

let test_deadlock_detection () =
  (* Two processes in a token-free cycle: the "apparent deadlock" of
     section 4 (data-flow needs initial tokens here). *)
  let g = Dataflow.create "cycle" in
  let mk name = Dataflow.add_process g (Dataflow.Kernel.map1 name Fun.id) in
  let a = mk "a" and b = mk "b" in
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  let back = Dataflow.connect g (b, "out") (a, "in") in
  let stats = Dataflow.run g in
  Alcotest.(check int) "nothing fires" 0 stats.Dataflow.steps;
  Alcotest.(check bool) "no tokens, not reported as deadlock" false
    stats.Dataflow.deadlocked;
  (* One initial token makes the loop turn forever (budget-bounded). *)
  Dataflow.initial_tokens g back [ fx 1 ];
  let stats = Dataflow.run ~max_firings:100 g in
  Alcotest.(check int) "loop turns" 100 stats.Dataflow.steps

let test_stuck_tokens_are_deadlock () =
  let g = Dataflow.create "stuck" in
  let k =
    Dataflow.Kernel.create "needs2" ~inputs:[ ("in", 2) ] ~outputs:[]
      (fun _ -> [])
  in
  let p = Dataflow.add_process g k in
  let src = Dataflow.add_process g (Dataflow.Kernel.source "s" (ints [ 1 ])) in
  ignore (Dataflow.connect g (src, "out") (p, "in"));
  let stats = Dataflow.run g in
  Alcotest.(check bool) "deadlocked" true stats.Dataflow.deadlocked

let test_production_validation () =
  let g = Dataflow.create "bad" in
  let k =
    Dataflow.Kernel.create "liar" ~inputs:[] ~outputs:[ ("out", 2) ]
      (fun _ -> [ ("out", [ fx 1 ]) ])
  in
  let p = Dataflow.add_process g k in
  match Dataflow.fire g p with
  | exception Dataflow.Dataflow_error _ -> ()
  | _ -> Alcotest.fail "wrong production accepted"

let test_connect_validation () =
  let g = Dataflow.create "conn" in
  let a = Dataflow.add_process g (Dataflow.Kernel.map1 "a" Fun.id) in
  let b = Dataflow.add_process g (Dataflow.Kernel.map1 "b" Fun.id) in
  (match Dataflow.connect g (a, "nope") (b, "in") with
  | exception Dataflow.Dataflow_error _ -> ()
  | _ -> Alcotest.fail "bad src port accepted");
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  match Dataflow.connect g (a, "out") (b, "in") with
  | exception Dataflow.Dataflow_error _ -> ()
  | _ -> Alcotest.fail "double-driven input accepted"

(* --- SDF analysis -------------------------------------------------------- *)

let test_repetition_vector_multirate () =
  (* a --2:3--> b : q(a) * 2 = q(b) * 3 -> q = (3, 2). *)
  let g = Dataflow.create "sdf" in
  let a =
    Dataflow.add_process g
      (Dataflow.Kernel.create "a" ~inputs:[] ~outputs:[ ("out", 2) ] (fun _ ->
           [ ("out", [ fx 0; fx 0 ]) ]))
  in
  let b =
    Dataflow.add_process g
      (Dataflow.Kernel.create "b" ~inputs:[ ("in", 3) ] ~outputs:[] (fun _ -> []))
  in
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  match Dataflow.repetition_vector g with
  | Some reps ->
    Alcotest.(check int) "q(a)" 3 (List.assoc "a" reps);
    Alcotest.(check int) "q(b)" 2 (List.assoc "b" reps)
  | None -> Alcotest.fail "consistent graph rejected"

let test_repetition_vector_chain () =
  let g = Dataflow.create "chain" in
  let mk name ins outs beh = Dataflow.add_process g (Dataflow.Kernel.create name ~inputs:ins ~outputs:outs beh) in
  let a = mk "a" [] [ ("out", 1) ] (fun _ -> [ ("out", [ fx 0 ]) ]) in
  let b = mk "b" [ ("in", 2) ] [ ("out", 3) ] (fun _ -> [ ("out", [ fx 0; fx 0; fx 0 ]) ]) in
  let c = mk "c" [ ("in", 1) ] [] (fun _ -> []) in
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  ignore (Dataflow.connect g (b, "out") (c, "in"));
  match Dataflow.repetition_vector g with
  | Some reps ->
    Alcotest.(check int) "q(a)" 2 (List.assoc "a" reps);
    Alcotest.(check int) "q(b)" 1 (List.assoc "b" reps);
    Alcotest.(check int) "q(c)" 3 (List.assoc "c" reps)
  | None -> Alcotest.fail "chain rejected"

let test_inconsistent_graph () =
  (* a -1:1-> b and a -2:1-> b is inconsistent. *)
  let g = Dataflow.create "bad_sdf" in
  let a =
    Dataflow.add_process g
      (Dataflow.Kernel.create "a" ~inputs:[]
         ~outputs:[ ("o1", 1); ("o2", 2) ]
         (fun _ -> [ ("o1", [ fx 0 ]); ("o2", [ fx 0; fx 0 ]) ]))
  in
  let b =
    Dataflow.add_process g
      (Dataflow.Kernel.create "b"
         ~inputs:[ ("i1", 1); ("i2", 1) ]
         ~outputs:[] (fun _ -> []))
  in
  ignore (Dataflow.connect g (a, "o1") (b, "i1"));
  ignore (Dataflow.connect g (a, "o2") (b, "i2"));
  Alcotest.(check bool) "inconsistent rejected" true
    (Dataflow.repetition_vector g = None)

let test_single_iteration_schedule () =
  let g = Dataflow.create "sched" in
  let a =
    Dataflow.add_process g
      (Dataflow.Kernel.create "a" ~inputs:[] ~outputs:[ ("out", 1) ] (fun _ ->
           [ ("out", [ fx 0 ]) ]))
  in
  let b =
    Dataflow.add_process g
      (Dataflow.Kernel.create "b" ~inputs:[ ("in", 2) ] ~outputs:[] (fun _ -> []))
  in
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  match Dataflow.single_iteration_schedule g with
  | Some order ->
    Alcotest.(check (list string)) "a a b" [ "a"; "a"; "b" ] order
  | None -> Alcotest.fail "schedulable graph rejected"

let test_kernel_reset_commit () =
  (* A stateful kernel with staged commits behaves transactionally. *)
  let state = ref 0 in
  let staged = ref 0 in
  let k =
    Dataflow.Kernel.create "tx" ~inputs:[ ("in", 1) ] ~outputs:[ ("out", 1) ]
      ~commit:(fun () -> state := !staged)
      ~reset:(fun () ->
        state := 0;
        staged := 0)
      (fun consumed ->
        match consumed with
        | [ ("in", [ v ]) ] ->
          staged := !state + Fixed.to_int v;
          [ ("out", [ fx !state ]) ]
        | _ -> assert false)
  in
  let g = Dataflow.create "tx_g" in
  let src = Dataflow.add_process g (Dataflow.Kernel.source "s" (ints [ 1; 2; 3 ])) in
  let p = Dataflow.add_process g k in
  let sink_k, drained = Dataflow.Kernel.sink "d" in
  let sink = Dataflow.add_process g sink_k in
  ignore (Dataflow.connect g (src, "out") (p, "in"));
  ignore (Dataflow.connect g (p, "out") (sink, "in"));
  ignore (Dataflow.run g);
  (* Each firing outputs the pre-commit state. *)
  Alcotest.(check (list int)) "pre-commit values" [ 0; 1; 3 ]
    (List.map Fixed.to_int (drained ()));
  Alcotest.(check int) "final state" 6 !state;
  k.Dataflow.Kernel.k_reset ();
  Alcotest.(check int) "reset" 0 !state

let suite =
  [
    Alcotest.test_case "source/map/sink pipeline" `Quick test_source_sink_map;
    Alcotest.test_case "firing rule" `Quick test_firing_rule;
    Alcotest.test_case "fire unsatisfied raises" `Quick test_fire_unsatisfied_raises;
    Alcotest.test_case "token-free cycle" `Quick test_deadlock_detection;
    Alcotest.test_case "stuck tokens are deadlock" `Quick test_stuck_tokens_are_deadlock;
    Alcotest.test_case "production validation" `Quick test_production_validation;
    Alcotest.test_case "connect validation" `Quick test_connect_validation;
    Alcotest.test_case "repetition vector (multirate)" `Quick test_repetition_vector_multirate;
    Alcotest.test_case "repetition vector (chain)" `Quick test_repetition_vector_chain;
    Alcotest.test_case "inconsistent SDF graph" `Quick test_inconsistent_graph;
    Alcotest.test_case "single-iteration schedule" `Quick test_single_iteration_schedule;
    Alcotest.test_case "kernel commit/reset" `Quick test_kernel_reset_commit;
  ]
