(* Tests for the two-level logic minimizer. *)

open Sop

let cube (s : string) : cube =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> Zero
      | '1' -> One
      | '-' -> Dash
      | _ -> invalid_arg "cube")

let all_inputs n =
  let rec go i acc =
    if i = 1 lsl n then List.rev acc
    else go (i + 1) (Array.init n (fun b -> i land (1 lsl b) <> 0) :: acc)
  in
  go 0 []

let same_function n f g =
  List.for_all (fun input -> eval f input = eval g input) (all_inputs n)

let test_covers () =
  (* cube index i constrains input i *)
  Alcotest.(check bool) "exact" true (covers (cube "10") [| true; false |]);
  Alcotest.(check bool) "dash" true (covers (cube "-1") [| false; true |]);
  Alcotest.(check bool) "mismatch" false (covers (cube "10") [| false; true |])

let test_merge_complementary () =
  (* x.y + x.!y = x *)
  let f = [ cube "11"; cube "01" ] in
  let m = minimize f in
  Alcotest.(check int) "one cube" 1 (List.length m);
  Alcotest.(check bool) "same function" true (same_function 2 f m);
  Alcotest.(check int) "one literal" 1 (literal_count m)

let test_absorption () =
  (* x + x.y = x *)
  let f = [ cube "1-"; cube "11" ] in
  let m = minimize f in
  Alcotest.(check int) "absorbed" 1 (List.length m);
  Alcotest.(check bool) "same function" true (same_function 2 f m)

let test_full_cover () =
  (* All four minterms of 2 variables minimize to the tautology. *)
  let f = [ cube "00"; cube "01"; cube "10"; cube "11" ] in
  let m = minimize f in
  Alcotest.(check bool) "same function" true (same_function 2 f m);
  Alcotest.(check int) "no literals" 0 (literal_count m)

let test_minimize_preserves_function_random () =
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 200 do
    let n = 2 + Random.State.int rng 4 in
    let n_cubes = 1 + Random.State.int rng 6 in
    let f =
      List.init n_cubes (fun _ ->
          Array.init n (fun _ ->
              match Random.State.int rng 3 with
              | 0 -> Zero
              | 1 -> One
              | _ -> Dash))
    in
    let m = minimize f in
    if not (same_function n f m) then Alcotest.fail "minimize changed function";
    if literal_count m > literal_count f then
      Alcotest.fail "minimize increased literal count"
  done

let test_to_gates () =
  (* Gate realization computes the same function, checked by simulation. *)
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 50 do
    let n = 2 + Random.State.int rng 3 in
    let n_cubes = Random.State.int rng 5 in
    let f =
      List.init n_cubes (fun _ ->
          Array.init n (fun _ ->
              match Random.State.int rng 3 with
              | 0 -> Zero
              | 1 -> One
              | _ -> Dash))
    in
    let nl = Netlist.create "sop" in
    let inputs = Array.init n (fun i -> Netlist.input_bus nl (Printf.sprintf "i%d" i) 1) in
    let input_nets = Array.map (fun b -> b.(0)) inputs in
    let o = Sop.to_gates nl ~inputs:input_nets f in
    Netlist.output_bus nl "o" [| o |];
    let sim = Netlist.Sim.create nl in
    List.iter
      (fun input ->
        Array.iteri
          (fun i v ->
            Netlist.Sim.set_input sim (Printf.sprintf "i%d" i)
              (if v then 1L else 0L))
          input;
        Netlist.Sim.settle sim;
        let got = Netlist.Sim.get_output sim ~signed:false "o" = 1L in
        if got <> eval f input then Alcotest.fail "gates disagree with SOP")
      (all_inputs n)
  done

let suite =
  [
    Alcotest.test_case "covers" `Quick test_covers;
    Alcotest.test_case "complementary merge" `Quick test_merge_complementary;
    Alcotest.test_case "absorption" `Quick test_absorption;
    Alcotest.test_case "full cover" `Quick test_full_cover;
    Alcotest.test_case "minimize preserves function (random)" `Quick
      test_minimize_preserves_function_random;
    Alcotest.test_case "gate realization (random)" `Quick test_to_gates;
  ]
