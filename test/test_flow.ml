(* Tests for the Flow facade's reporting paths and the remaining
   code-generation corners (DECT-scale emission with ROM constants,
   VCD on a large system, report rendering). *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_check_report_rendering () =
  (* A deliberately dirty system: dangling input, unreachable state. *)
  let sfg =
    Sfg.build "fl_sfg" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        ignore (Sfg.Builder.input b "unused" s8);
        Sfg.Builder.output b "y" (Signal.resize s8 x))
  in
  let fsm = Fsm.create "fl_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  ignore (Fsm.state fsm "orphan");
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "fl_dirty" in
  ignore (Cycle_system.add_timed sys "c" fsm);
  let report = Flow.check sys in
  Alcotest.(check bool) "not clean" false (Flow.check_clean report);
  let text = Format.asprintf "%a" Flow.pp_check_report report in
  Alcotest.(check bool) "mentions dangling" true (contains text "dangling input");
  Alcotest.(check bool) "mentions unreachable" true (contains text "unreachable state orphan");
  Alcotest.(check bool) "mentions unconnected" true (contains text "no driver")

let dect () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float c) /. 3.0)))
      ()
  in
  d.Dect_transceiver.system

let test_dect_vhdl_emission () =
  let files = Vhdl.of_system (dect ()) in
  (* 24 component files + RAM entity + top. *)
  Alcotest.(check int) "file count" 26 (List.length files);
  let vliw = List.assoc "vliw_ctl.vhd" files in
  Alcotest.(check bool) "irom constants" true (contains vliw "constant rom_irom0");
  Alcotest.(check bool) "execute state" true (contains vliw "st_execute");
  let equ = List.assoc "dp_equ.vhd" files in
  Alcotest.(check bool) "57-way decode present" true
    (contains equ "elsif");
  let top = List.assoc "dect_top.vhd" files in
  Alcotest.(check bool) "instantiates every datapath" true
    (contains top "u_dp_mac3 : entity work.dp_mac3");
  Alcotest.(check bool) "lines at scale" true (Vhdl.line_count files > 4000)

let test_dect_vcd () =
  let sys = dect () in
  let vcd = Vcd.record sys ~cycles:45 in
  Alcotest.(check bool) "instruction bus declared" true
    (contains vcd "vliw_ctl.bank0");
  Alcotest.(check bool) "ram rdata declared" true (contains vcd "rdata");
  Alcotest.(check bool) "has time marks" true (contains vcd "#44")

let test_single_iteration_deadlock_none () =
  (* A consistent SDF graph that cannot complete one iteration without
     initial tokens (a token-free loop): schedule must be None. *)
  let g = Dataflow.create "sd" in
  let mk name = Dataflow.add_process g (Dataflow.Kernel.map1 name Fun.id) in
  let a = mk "a" and b = mk "b" in
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  ignore (Dataflow.connect g (b, "out") (a, "in"));
  Alcotest.(check bool) "no schedule" true
    (Dataflow.single_iteration_schedule g = None);
  Alcotest.(check bool) "but consistent" true
    (Dataflow.repetition_vector g <> None)

let test_synthesize_to_verilog_roundtrip () =
  let sys = dect () in
  let dir = Filename.temp_file "ocapi_flow" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let nl, rep, path =
    Flow.synthesize_to_verilog ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      sys ~dir
  in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "tens of kgates" true
    (rep.Synthesize.total.Netlist.gate_equivalents > 20_000);
  (* The written file round-trips through the printer length. *)
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Alcotest.(check int) "written length" (String.length (Verilog.of_netlist nl)) len

let suite =
  [
    Alcotest.test_case "check report rendering" `Quick test_check_report_rendering;
    Alcotest.test_case "DECT VHDL emission at scale" `Quick test_dect_vhdl_emission;
    Alcotest.test_case "DECT VCD" `Quick test_dect_vcd;
    Alcotest.test_case "token-free SDF loop schedule" `Quick
      test_single_iteration_deadlock_none;
    Alcotest.test_case "synthesize_to_verilog roundtrip" `Slow
      test_synthesize_to_verilog_roundtrip;
  ]
