(* Tests for the Flow facade's reporting paths and the remaining
   code-generation corners (DECT-scale emission with ROM constants,
   VCD on a large system, report rendering). *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_check_report_rendering () =
  (* A deliberately dirty system: dangling input, unreachable state. *)
  let sfg =
    Sfg.build "fl_sfg" (fun b ->
        let x = Sfg.Builder.input b "x" s8 in
        ignore (Sfg.Builder.input b "unused" s8);
        Sfg.Builder.output b "y" (Signal.resize s8 x))
  in
  let fsm = Fsm.create "fl_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  ignore (Fsm.state fsm "orphan");
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let sys = Cycle_system.create "fl_dirty" in
  ignore (Cycle_system.add_timed sys "c" fsm);
  let report = Flow.check sys in
  Alcotest.(check bool) "not clean" false (Flow.check_clean report);
  let text = Format.asprintf "%a" Flow.pp_check_report report in
  Alcotest.(check bool) "mentions dangling" true (contains text "dangling input");
  Alcotest.(check bool) "mentions unreachable" true (contains text "unreachable state orphan");
  Alcotest.(check bool) "mentions unconnected" true (contains text "no driver")

let dect () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float c) /. 3.0)))
      ()
  in
  d.Dect_transceiver.system

let test_dect_vhdl_emission () =
  let files = Vhdl.of_system (dect ()) in
  (* 24 component files + RAM entity + top. *)
  Alcotest.(check int) "file count" 26 (List.length files);
  let vliw = List.assoc "vliw_ctl.vhd" files in
  Alcotest.(check bool) "irom constants" true (contains vliw "constant rom_irom0");
  Alcotest.(check bool) "execute state" true (contains vliw "st_execute");
  let equ = List.assoc "dp_equ.vhd" files in
  Alcotest.(check bool) "57-way decode present" true
    (contains equ "elsif");
  let top = List.assoc "dect_top.vhd" files in
  Alcotest.(check bool) "instantiates every datapath" true
    (contains top "u_dp_mac3 : entity work.dp_mac3");
  Alcotest.(check bool) "lines at scale" true (Vhdl.line_count files > 4000)

let test_dect_vcd () =
  let sys = dect () in
  let vcd = Vcd.record sys ~cycles:45 in
  Alcotest.(check bool) "instruction bus declared" true
    (contains vcd "vliw_ctl.bank0");
  Alcotest.(check bool) "ram rdata declared" true (contains vcd "rdata");
  Alcotest.(check bool) "has time marks" true (contains vcd "#44")

let test_single_iteration_deadlock_none () =
  (* A consistent SDF graph that cannot complete one iteration without
     initial tokens (a token-free loop): schedule must be None. *)
  let g = Dataflow.create "sd" in
  let mk name = Dataflow.add_process g (Dataflow.Kernel.map1 name Fun.id) in
  let a = mk "a" and b = mk "b" in
  ignore (Dataflow.connect g (a, "out") (b, "in"));
  ignore (Dataflow.connect g (b, "out") (a, "in"));
  Alcotest.(check bool) "no schedule" true
    (Dataflow.single_iteration_schedule g = None);
  Alcotest.(check bool) "but consistent" true
    (Dataflow.repetition_vector g <> None)

let test_synthesize_to_verilog_roundtrip () =
  let sys = dect () in
  let dir = Filename.temp_file "ocapi_flow" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let nl, rep, path =
    Flow.synthesize_to_verilog ~macro_of_kernel:Dect_transceiver.macro_of_kernel
      sys ~dir
  in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "tens of kgates" true
    (rep.Synthesize.total.Netlist.gate_equivalents > 20_000);
  (* The written file round-trips through the printer length. *)
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Alcotest.(check int) "written length" (String.length (Verilog.of_netlist nl)) len

(* The LRU-by-mtime disk bound: the cache directory never exceeds
   [max_disk_bytes], the oldest untouched entries are the ones deleted,
   and a read refreshes an entry's recency. *)
let test_cache_disk_eviction () =
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi-flow-cache-%s-%d" name (Unix.getpid ()))
  in
  let rm_rf dir =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let histories =
    [ ("probe", List.init 64 (fun i -> (i, Fixed.of_int s8 (i mod 7)))) ]
  in
  Fun.protect
    ~finally:(fun () ->
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      rm_rf (tmp "size");
      rm_rf (tmp "lru"))
    (fun () ->
      (* Phase 1: measure one entry's on-disk footprint. *)
      Flow.Cache.enable ~dir:(tmp "size") ();
      Flow.Cache.store_histories "probe-entry" histories;
      let entry_bytes =
        Array.fold_left
          (fun acc f ->
            acc + (Unix.stat (Filename.concat (tmp "size") f)).Unix.st_size)
          0
          (Sys.readdir (tmp "size"))
      in
      Alcotest.(check bool) "entry has a real footprint" true (entry_bytes > 0);
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      (* Phase 2: cap at ~3.5 entries, store e1..e3, touch e1, store e4:
         the sweep must evict exactly the least recently used (e2). *)
      Flow.Cache.enable ~dir:(tmp "lru") ~max_disk_bytes:(entry_bytes * 7 / 2)
        ();
      Flow.Cache.store_histories "e1" histories;
      Unix.sleepf 0.05;
      Flow.Cache.store_histories "e2" histories;
      Unix.sleepf 0.05;
      Flow.Cache.store_histories "e3" histories;
      Unix.sleepf 0.05;
      (* Recency is refreshed by *disk* hits; drop the in-memory table
         first so the e1 lookup reads (and touches) its file. *)
      Flow.Cache.clear ();
      ignore (Flow.Cache.find_histories "e1");
      Unix.sleepf 0.05;
      Flow.Cache.store_histories "e4" histories;
      let s = Flow.Cache.stats () in
      Alcotest.(check int) "one eviction" 1 s.Flow.Cache.disk_evictions;
      let disk_bytes =
        Array.fold_left
          (fun acc f ->
            acc + (Unix.stat (Filename.concat (tmp "lru") f)).Unix.st_size)
          0
          (Sys.readdir (tmp "lru"))
      in
      Alcotest.(check bool) "directory within the cap" true
        (disk_bytes <= entry_bytes * 7 / 2);
      (* Drop the in-memory table so lookups answer from disk alone. *)
      Flow.Cache.clear ();
      let present k = Flow.Cache.find_histories k <> None in
      Alcotest.(check bool) "touched e1 survived" true (present "e1");
      Alcotest.(check bool) "LRU e2 evicted" false (present "e2");
      Alcotest.(check bool) "e3 survived" true (present "e3");
      Alcotest.(check bool) "fresh e4 survived" true (present "e4");
      (* What survived still round-trips. *)
      Alcotest.(check bool) "disk value intact" true
        (Flow.Cache.find_histories "e1" = Some histories))

let suite =
  [
    Alcotest.test_case "check report rendering" `Quick test_check_report_rendering;
    Alcotest.test_case "cache disk LRU eviction" `Quick test_cache_disk_eviction;
    Alcotest.test_case "DECT VHDL emission at scale" `Quick test_dect_vhdl_emission;
    Alcotest.test_case "DECT VCD" `Quick test_dect_vcd;
    Alcotest.test_case "token-free SDF loop schedule" `Quick
      test_single_iteration_deadlock_none;
    Alcotest.test_case "synthesize_to_verilog roundtrip" `Slow
      test_synthesize_to_verilog_roundtrip;
  ]
