(* Tests for the gate-level netlist optimizer. *)

let s8 = Fixed.signed ~width:8 ~frac:0
let clk = Clock.default

let sim_output nl ~inputs ~out =
  let sim = Netlist.Sim.create nl in
  List.iter (fun (name, v) -> Netlist.Sim.set_input sim name v) inputs;
  Netlist.Sim.settle sim;
  Netlist.Sim.get_output sim ~signed:false out

let test_constant_folding () =
  let nl = Netlist.create "cf" in
  let a = Netlist.input_bus nl "a" 1 in
  let zero = Netlist.gate nl Netlist.Const0 [] in
  let one = Netlist.gate nl Netlist.Const1 [] in
  (* and(a, 1) = a; or(a, 0) = a; and(a, 0) = 0; xor(a, 1) = not a. *)
  Netlist.output_bus nl "k1" [| Netlist.gate nl Netlist.And [ a.(0); one ] |];
  Netlist.output_bus nl "k2" [| Netlist.gate nl Netlist.Or [ a.(0); zero ] |];
  Netlist.output_bus nl "k3" [| Netlist.gate nl Netlist.And [ a.(0); zero ] |];
  Netlist.output_bus nl "k4" [| Netlist.gate nl Netlist.Xor [ a.(0); one ] |];
  let opt, st = Netopt.run nl in
  Alcotest.(check bool) "gates removed" true
    (st.Netopt.gates_after < st.Netopt.gates_before);
  List.iter
    (fun bit ->
      let v name = sim_output opt ~inputs:[ ("a", bit) ] ~out:name in
      Alcotest.(check int64) "a and 1" bit (v "k1");
      Alcotest.(check int64) "a or 0" bit (v "k2");
      Alcotest.(check int64) "a and 0" 0L (v "k3");
      Alcotest.(check int64) "a xor 1" (Int64.logxor bit 1L) (v "k4"))
    [ 0L; 1L ]

let test_structural_hashing () =
  let nl = Netlist.create "sh" in
  let a = Netlist.input_bus nl "a" 1 and b = Netlist.input_bus nl "b" 1 in
  (* The same AND built twice, plus an XOR of the two copies (== 0). *)
  let x1 = Netlist.gate nl Netlist.And [ a.(0); b.(0) ] in
  let x2 = Netlist.gate nl Netlist.And [ a.(0); b.(0) ] in
  Netlist.output_bus nl "z" [| Netlist.gate nl Netlist.Xor [ x1; x2 ] |];
  let opt, _ = Netopt.run nl in
  (* xor(x, x) folds to constant zero; almost everything disappears. *)
  Alcotest.(check bool) "collapsed" true ((Netlist.counts opt).Netlist.combinational <= 2);
  List.iter
    (fun (av, bv) ->
      Alcotest.(check int64) "always zero" 0L
        (sim_output opt ~inputs:[ ("a", av); ("b", bv) ] ~out:"z"))
    [ (0L, 0L); (1L, 0L); (0L, 1L); (1L, 1L) ]

let test_dead_logic_elimination () =
  let nl = Netlist.create "dce" in
  let a = Netlist.input_bus nl "a" 1 in
  let live = Netlist.gate nl Netlist.Not [ a.(0) ] in
  (* A whole dead cone: gates and a flip-flop nobody reads. *)
  let d1 = Netlist.gate nl Netlist.And [ a.(0); a.(0) ] in
  let d2 = Netlist.gate nl Netlist.Xor [ d1; a.(0) ] in
  ignore (Netlist.dff nl d2);
  Netlist.output_bus nl "y" [| live |];
  let opt, st = Netopt.run nl in
  Alcotest.(check int) "one gate survives" 1 (Netlist.counts opt).Netlist.combinational;
  Alcotest.(check int) "dff removed" 0 (Netlist.counts opt).Netlist.flip_flops;
  Alcotest.(check int) "dffs_before" 1 st.Netopt.dffs_before

let test_live_feedback_kept () =
  (* A counter bit: dff feeding its own inverter must survive. *)
  let nl = Netlist.create "fb" in
  let q = Netlist.new_net nl in
  let d = Netlist.gate nl Netlist.Not [ q ] in
  Netlist.dff_into nl ~q d;
  Netlist.output_bus nl "t" [| q |];
  let opt, _ = Netopt.run nl in
  Alcotest.(check int) "dff kept" 1 (Netlist.counts opt).Netlist.flip_flops;
  let sim = Netlist.Sim.create opt in
  Netlist.Sim.settle sim;
  let v0 = Netlist.Sim.get_output sim ~signed:false "t" in
  Netlist.Sim.clock sim;
  let v1 = Netlist.Sim.get_output sim ~signed:false "t" in
  Netlist.Sim.clock sim;
  let v2 = Netlist.Sim.get_output sim ~signed:false "t" in
  Alcotest.(check bool) "toggles" true (v0 <> v1 && v0 = v2)

let test_mux_identities () =
  let nl = Netlist.create "mux" in
  let s = Netlist.input_bus nl "s" 1 in
  let a = Netlist.input_bus nl "a" 1 and b = Netlist.input_bus nl "b" 1 in
  let one = Netlist.gate nl Netlist.Const1 [] in
  let zero = Netlist.gate nl Netlist.Const0 [] in
  Netlist.output_bus nl "m_s1" [| Netlist.gate nl Netlist.Mux2 [ one; a.(0); b.(0) ] |];
  Netlist.output_bus nl "m_eq" [| Netlist.gate nl Netlist.Mux2 [ s.(0); a.(0); a.(0) ] |];
  Netlist.output_bus nl "m_sel" [| Netlist.gate nl Netlist.Mux2 [ s.(0); one; zero ] |];
  let opt, _ = Netopt.run nl in
  Alcotest.(check int) "all muxes fold" 0
    (Netlist.fold_gates opt ~init:0 ~f:(fun acc kind _ _ ->
         match kind with Netlist.Mux2 -> acc + 1 | _ -> acc));
  let v out inputs = sim_output opt ~inputs ~out in
  Alcotest.(check int64) "sel const" 1L
    (v "m_s1" [ ("s", 0L); ("a", 1L); ("b", 0L) ]);
  Alcotest.(check int64) "same branches" 1L
    (v "m_eq" [ ("s", 0L); ("a", 1L); ("b", 0L) ]);
  Alcotest.(check int64) "bool mux = sel" 1L
    (v "m_sel" [ ("s", 1L); ("a", 0L); ("b", 0L) ])

let test_idempotent () =
  (* Optimizing an already-optimized netlist changes nothing more. *)
  let bits = Dect_stimuli.burst ~seed:13 () in
  let tx = Dect_stimuli.transmit bits in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.5) tx)
  in
  let sys = (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system in
  let nl, _ = Synthesize.synthesize sys in
  let opt1, st1 = Netopt.run nl in
  let _, st2 = Netopt.run opt1 in
  Alcotest.(check bool) "first pass shrinks" true
    (st1.Netopt.equivalents_after < st1.Netopt.equivalents_before);
  Alcotest.(check bool) "second pass stable (within buffers)" true
    (st2.Netopt.equivalents_after = st2.Netopt.equivalents_before)

let test_optimized_verify_hcor () =
  let bits = Dect_stimuli.burst ~seed:21 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:28.0 ~seed:21 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  let sys = (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system in
  let r = Synthesize.verify ~optimize:true sys ~cycles:150 in
  Alcotest.(check int) "no mismatches" 0 (List.length r.Synthesize.mismatches);
  Alcotest.(check bool) "vectors" true (r.Synthesize.vectors_checked >= 700)

(* A randomized alu-style component: the optimized netlist must agree
   with the reference on every cycle. *)
let test_optimized_verify_random () =
  let rng = Random.State.make [| 77 |] in
  for trial = 1 to 3 do
    let acc = Signal.Reg.create clk (Printf.sprintf "no_acc%d" trial) s8 in
    let sfg =
      Sfg.build (Printf.sprintf "no_sfg%d" trial) (fun b ->
          let x = Sfg.Builder.input b "x" s8 in
          let t1 = Signal.(x *: consti s8 (1 + Random.State.int rng 5)) in
          let t2 = Signal.(reg_q acc -: x) in
          Sfg.Builder.output b "y"
            (Signal.resize ~overflow:Fixed.Saturate s8 Signal.(t1 +: t2));
          Sfg.Builder.assign_resized b acc Signal.(reg_q acc +: x))
    in
    let fsm = Fsm.create (Printf.sprintf "no_ctl%d" trial) in
    let s0 = Fsm.initial fsm "s0" in
    Fsm.(s0 |-- always |+ sfg |-> s0);
    let sys = Cycle_system.create (Printf.sprintf "no_sys%d" trial) in
    let c = Cycle_system.add_timed sys "c" fsm in
    let stim =
      Cycle_system.add_input sys "x_in" s8 (fun cyc ->
          Some (Fixed.of_int s8 ((cyc * 31 mod 140) - 70)))
    in
    let p = Cycle_system.add_output sys "y_out" in
    ignore (Cycle_system.connect sys (stim, "out") [ (c, "x") ]);
    ignore (Cycle_system.connect sys (c, "y") [ (p, "in") ]);
    let r = Synthesize.verify ~optimize:true sys ~cycles:60 in
    Alcotest.(check int) "no mismatches" 0 (List.length r.Synthesize.mismatches)
  done


(* Property: a random gate network (with flip-flops and feedback through
   them) simulates identically before and after optimization, over
   random stimulus sequences. *)
let test_random_networks_equivalent () =
  let rng = Random.State.make [| 2024 |] in
  for _trial = 1 to 40 do
    let nl = Netlist.create "rand" in
    let a = Netlist.input_bus nl "a" 4 in
    let pool = ref (Array.to_list a) in
    let pick () =
      let l = !pool in
      List.nth l (Random.State.int rng (List.length l))
    in
    (* Sprinkle constants into the pool to exercise folding. *)
    pool := Netlist.gate nl Netlist.Const0 [] :: Netlist.gate nl Netlist.Const1 [] :: !pool;
    for _ = 1 to 25 do
      let n =
        match Random.State.int rng 8 with
        | 0 -> Netlist.gate nl Netlist.Not [ pick () ]
        | 1 -> Netlist.gate nl Netlist.And [ pick (); pick () ]
        | 2 -> Netlist.gate nl Netlist.Or [ pick (); pick () ]
        | 3 -> Netlist.gate nl Netlist.Xor [ pick (); pick () ]
        | 4 -> Netlist.gate nl Netlist.Nand [ pick (); pick () ]
        | 5 -> Netlist.gate nl Netlist.Nor [ pick (); pick () ]
        | 6 -> Netlist.gate nl Netlist.Mux2 [ pick (); pick (); pick () ]
        | _ -> Netlist.dff nl ~init:(Random.State.bool rng) (pick ())
      in
      pool := n :: !pool
    done;
    let outs = Array.init 3 (fun _ -> pick ()) in
    Netlist.output_bus nl "o" outs;
    let opt, _ = Netopt.run nl in
    let s1 = Netlist.Sim.create nl and s2 = Netlist.Sim.create opt in
    for _cycle = 1 to 12 do
      let v = Int64.of_int (Random.State.int rng 16) in
      Netlist.Sim.set_input s1 "a" v;
      Netlist.Sim.set_input s2 "a" v;
      Netlist.Sim.settle s1;
      Netlist.Sim.settle s2;
      let o1 = Netlist.Sim.get_output s1 ~signed:false "o" in
      let o2 = Netlist.Sim.get_output s2 ~signed:false "o" in
      if o1 <> o2 then Alcotest.failf "optimized network diverged (%Ld vs %Ld)" o1 o2;
      Netlist.Sim.clock s1;
      Netlist.Sim.clock s2
    done
  done

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
    Alcotest.test_case "dead logic elimination" `Quick test_dead_logic_elimination;
    Alcotest.test_case "live feedback kept" `Quick test_live_feedback_kept;
    Alcotest.test_case "mux identities" `Quick test_mux_identities;
    Alcotest.test_case "idempotent" `Quick test_idempotent;
    Alcotest.test_case "optimized HCOR verifies" `Quick test_optimized_verify_hcor;
    Alcotest.test_case "optimized random designs verify" `Quick
      test_optimized_verify_random;
    Alcotest.test_case "random gate networks equivalent" `Quick
      test_random_networks_equivalent;
  ]
