(* Tests for the resilient campaign service: deterministic seeded
   backoff, journal round-trip and torn-line tolerance, replay
   semantics, and the process supervisor itself — driven by tiny shell
   stub workers so crashes, poison jobs and silent hangs are cheap and
   deterministic.  Also the disk-cache robustness satellites: corrupted
   and truncated entries must degrade to counted misses, and an
   unwritable cache directory must not break in-memory operation. *)

module Json = Ocapi_obs.Json

let hcor_design () =
  let bits = Dect_stimuli.burst ~seed:1 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

let ensure_design =
  lazy (Ocapi_batch.register_design ~name:"ts-svc" hcor_design)

let json_of s =
  match Json.of_string s with Ok j -> j | Error e -> failwith e

(* One simulate request per seed: distinct seeds give distinct dedup
   keys, so tests control exactly how many executions they create. *)
let sim_request seed =
  json_of
    (Printf.sprintf
       "{\"kind\": \"simulate\", \"design\": \"ts-svc\", \"engine\": \
        \"compiled\", \"cycles\": 4, \"seed\": %d}"
       seed)

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi-service-%s-%d" name (Unix.getpid ()))
  in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
       (try Sys.readdir d with Sys_error _ -> [||])
   with Sys_error _ -> ());
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf d =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
    (try Sys.readdir d with Sys_error _ -> [||]);
  try Unix.rmdir d with Unix.Unix_error _ -> ()

(* A stub worker: /bin/sh -c SCRIPT worker <appended args>, so inside
   SCRIPT the supervisor's appended arguments are $1.. — in particular
   "$4" is the artifact path.  Stubs bypass the real job body, which
   lets a test script crash, hang or succeed on demand while the
   supervisor sees the genuine protocol. *)
let stub script = [ "/bin/sh"; "-c"; script; "worker" ]

let write_artifact = {|printf 'stub\n' > "$4.t" && mv "$4.t" "$4"; echo done|}

let config ~name ~script =
  let state = tmp_dir (name ^ "-state") in
  let artifacts = tmp_dir (name ^ "-artifacts") in
  ( state,
    artifacts,
    {
      Ocapi_service.default_config with
      cf_workers = 2;
      cf_state_dir = state;
      cf_artifact_dir = artifacts;
      cf_worker_cmd = stub script;
      cf_retries = 3;
      cf_backoff_base = 0.05;
      cf_backoff_cap = 0.2;
    } )

(* --- backoff -------------------------------------------------------------- *)

let test_backoff () =
  let d ~attempt =
    Ocapi_service.backoff_delay ~base:1.0 ~cap:1e9 ~seed:3 ~corr:"abc" ~attempt
  in
  Alcotest.(check (float 0.0)) "deterministic" (d ~attempt:2) (d ~attempt:2);
  let in_range x lo hi = x >= lo && x < hi in
  Alcotest.(check bool) "attempt 1 in [1,1.5)" true (in_range (d ~attempt:1) 1.0 1.5);
  Alcotest.(check bool) "attempt 2 in [2,3)" true (in_range (d ~attempt:2) 2.0 3.0);
  Alcotest.(check bool) "attempt 3 in [4,6)" true (in_range (d ~attempt:3) 4.0 6.0);
  Alcotest.(check bool) "jitter decorrelates jobs" true
    (Ocapi_service.backoff_delay ~base:1.0 ~cap:1e9 ~seed:3 ~corr:"abc"
       ~attempt:1
    <> Ocapi_service.backoff_delay ~base:1.0 ~cap:1e9 ~seed:3 ~corr:"xyz"
         ~attempt:1);
  Alcotest.(check (float 0.0)) "cap clamps" 2.0
    (Ocapi_service.backoff_delay ~base:1.0 ~cap:2.0 ~seed:3 ~corr:"abc"
       ~attempt:30);
  Alcotest.check_raises "attempt 0 rejected"
    (Invalid_argument "Ocapi_service.backoff_delay: attempt < 1") (fun () ->
      ignore
        (Ocapi_service.backoff_delay ~base:1.0 ~cap:2.0 ~seed:3 ~corr:"a"
           ~attempt:0))

(* --- journal -------------------------------------------------------------- *)

let sample_entries =
  Ocapi_service.
    [
      J_submitted
        {
          js_corr = "c1";
          js_key = "k1";
          js_label = "job-1";
          js_artifact = "a1.json";
          js_request = Json.Obj [ ("kind", Json.String "simulate") ];
          js_dedup = false;
        };
      J_started { jt_corr = "c1"; jt_attempt = 1 };
      J_crashed { jc_corr = "c1"; jc_attempt = 1; jc_reason = "signal sigkill" };
      J_retried { jr_corr = "c1"; jr_attempt = 2; jr_backoff = 0.125 };
      J_completed { jd_corr = "c1"; jd_artifact = "a1.json" };
      J_failed { jf_corr = "c2"; jf_code = "retries-exhausted"; jf_message = "m" };
      J_rejected { jx_corr = "c3"; jx_label = "job-3" };
    ]

let test_journal_roundtrip () =
  List.iter
    (fun e ->
      let line = Json.to_string (Ocapi_service.entry_json e) in
      match Json.of_string line with
      | Error m -> Alcotest.failf "reparse: %s" m
      | Ok j -> (
        match Ocapi_service.entry_of_json j with
        | Error m -> Alcotest.failf "decode: %s" m
        | Ok e' ->
          Alcotest.(check bool) ("round-trip: " ^ line) true (e = e')))
    sample_entries;
  (* And through an actual file. *)
  let dir = tmp_dir "journal-rt" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "journal.jsonl" in
      let jr = Ocapi_service.journal_open path in
      List.iter (Ocapi_service.journal_append jr) sample_entries;
      Ocapi_service.journal_close jr;
      match Ocapi_service.journal_load path with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok es ->
        Alcotest.(check bool) "file round-trip" true (es = sample_entries))

let test_journal_torn_lines () =
  let dir = tmp_dir "journal-torn" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "journal.jsonl" in
      let write lines =
        let oc = open_out_bin path in
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc
      in
      let good = {|{"ev":"started","corr":"c1","attempt":1}|} in
      (* A line torn by a crash mid-append: tolerated iff final. *)
      write [ good; {|{"ev":"comple|} ];
      (match Ocapi_service.journal_load path with
      | Ok [ Ocapi_service.J_started _ ] -> ()
      | Ok _ -> Alcotest.fail "torn final line should be dropped"
      | Error m -> Alcotest.failf "torn final line should not error: %s" m);
      write [ {|{"ev":"comple|}; good ];
      (match Ocapi_service.journal_load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "torn interior line is corruption");
      (* Unknown event kinds are skipped: a newer server's journal still
         replays on an older one. *)
      write [ good; {|{"ev":"frobnicated","corr":"c9"}|}; good ];
      (match Ocapi_service.journal_load path with
      | Ok [ Ocapi_service.J_started _; Ocapi_service.J_started _ ] -> ()
      | Ok _ -> Alcotest.fail "unknown events should be skipped"
      | Error m -> Alcotest.failf "unknown events should not error: %s" m);
      (* A missing journal is an empty one. *)
      Sys.remove path;
      match Ocapi_service.journal_load path with
      | Ok [] -> ()
      | _ -> Alcotest.fail "missing journal should load empty")

(* --- replay --------------------------------------------------------------- *)

let submitted ?(dedup = false) corr key =
  Ocapi_service.J_submitted
    {
      js_corr = corr;
      js_key = key;
      js_label = "job-" ^ corr;
      js_artifact = corr ^ ".json";
      js_request = Json.Obj [];
      js_dedup = dedup;
    }

let test_replay () =
  let open Ocapi_service in
  let r =
    replay
      [
        (* c1: completed — a dedup source on restart. *)
        submitted "c1" "k1";
        J_started { jt_corr = "c1"; jt_attempt = 1 };
        J_completed { jd_corr = "c1"; jd_artifact = "c1.json" };
        (* c2: in flight when the server died, after one real crash:
           pending again with exactly that one attempt consumed. *)
        submitted "c2" "k2";
        J_started { jt_corr = "c2"; jt_attempt = 1 };
        J_crashed { jc_corr = "c2"; jc_attempt = 1; jc_reason = "signal sigkill" };
        J_retried { jr_corr = "c2"; jr_attempt = 2; jr_backoff = 0.1 };
        J_started { jt_corr = "c2"; jt_attempt = 2 };
        (* c3: journaled but never started: pending, no budget spent. *)
        submitted "c3" "k3";
        (* c4: poisoned earlier, then resubmitted — failed keys stay
           resubmittable, so the later submission wins. *)
        submitted "c4" "k4";
        J_failed { jf_corr = "c4"; jf_code = "retries-exhausted"; jf_message = "" };
        submitted "c4" "k4";
        (* dedup submissions never create work. *)
        submitted ~dedup:true "c1" "k1";
      ]
  in
  Alcotest.(check (list (pair string string))) "completed" [ ("k1", "c1.json") ]
    r.rv_completed;
  Alcotest.(check (list string)) "pending order" [ "c2"; "c3"; "c4" ]
    (List.map (fun p -> p.p_corr) r.rv_pending);
  Alcotest.(check (list int))
    "server death consumes no retry budget, crashes do" [ 1; 0; 0 ]
    (List.map (fun p -> p.p_attempts) r.rv_pending);
  Alcotest.(check (list (pair string string))) "no terminal failures left" []
    r.rv_failed

(* --- the supervisor, driven by stub workers ------------------------------- *)

let serve_quiet cfg ~requests = Ocapi_service.serve cfg ~requests

let test_serve_success () =
  Lazy.force ensure_design;
  let state, artifacts, cfg =
    config ~name:"ok" ~script:("echo hb; " ^ write_artifact)
  in
  Fun.protect
    ~finally:(fun () ->
      rm_rf state;
      rm_rf artifacts)
    (fun () ->
      let s = serve_quiet cfg ~requests:[ sim_request 1; sim_request 2 ] in
      Alcotest.(check int) "completed" 2 s.Ocapi_service.sm_completed;
      Alcotest.(check int) "no crashes" 0 s.sm_crashes;
      Alcotest.(check int) "artifacts on disk" 2
        (Array.length (Sys.readdir artifacts));
      (* Submitting the same manifest again dedups against the journal:
         nothing re-executes. *)
      let s2 = serve_quiet cfg ~requests:[ sim_request 1; sim_request 2 ] in
      Alcotest.(check int) "all deduped" 2 s2.Ocapi_service.sm_deduped;
      Alcotest.(check int) "nothing re-ran" 0 s2.sm_completed)

let test_serve_crash_retry () =
  Lazy.force ensure_design;
  let marker =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi-service-crashonce-%d" (Unix.getpid ()))
  in
  (try Sys.remove marker with Sys_error _ -> ());
  (* First attempt self-destructs; the retry succeeds. *)
  let script =
    Printf.sprintf {|if [ -f %s ]; then %s; else : > %s; kill -9 $$; fi|}
      marker write_artifact marker
  in
  let state, artifacts, cfg = config ~name:"retry" ~script in
  Fun.protect
    ~finally:(fun () ->
      rm_rf state;
      rm_rf artifacts;
      try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      Ocapi_obs.Events.clear ();
      Ocapi_obs.Events.set_enabled true;
      let s = serve_quiet cfg ~requests:[ sim_request 1 ] in
      Ocapi_obs.Events.set_enabled false;
      Alcotest.(check int) "one crash" 1 s.Ocapi_service.sm_crashes;
      Alcotest.(check int) "one retry" 1 s.sm_retries;
      Alcotest.(check int) "completed after retry" 1 s.sm_completed;
      Alcotest.(check int) "not poisoned" 0 s.sm_poisoned;
      let kinds =
        List.map
          (fun e -> e.Ocapi_obs.Events.e_kind)
          (Ocapi_obs.Events.events ())
      in
      Alcotest.(check bool) "worker_crashed observable" true
        (List.mem "worker_crashed" kinds);
      Alcotest.(check bool) "job_retried observable" true
        (List.mem "job_retried" kinds))

let test_serve_poison () =
  Lazy.force ensure_design;
  let state, artifacts, cfg = config ~name:"poison" ~script:"kill -9 $$" in
  let cfg = { cfg with Ocapi_service.cf_retries = 2 } in
  Fun.protect
    ~finally:(fun () ->
      rm_rf state;
      rm_rf artifacts)
    (fun () ->
      let s = serve_quiet cfg ~requests:[ sim_request 1 ] in
      Alcotest.(check int) "two crashed attempts" 2 s.Ocapi_service.sm_crashes;
      Alcotest.(check int) "poisoned" 1 s.sm_poisoned;
      Alcotest.(check int) "failed terminally" 1 s.sm_failed;
      Alcotest.(check int) "nothing completed" 0 s.sm_completed;
      (* The journal's verdict is the structured error code. *)
      match
        Ocapi_service.journal_load (Filename.concat state "journal.jsonl")
      with
      | Error m -> Alcotest.failf "journal: %s" m
      | Ok entries ->
        Alcotest.(check bool) "journal records retries-exhausted" true
          (List.exists
             (function
               | Ocapi_service.J_failed { jf_code = "retries-exhausted"; _ } ->
                 true
               | _ -> false)
             entries))

let test_serve_heartbeat_backstop () =
  Lazy.force ensure_design;
  (* A silently wedged worker: no heartbeats, no exit.  The supervisor
     must kill(9) it past the heartbeat timeout. *)
  let state, artifacts, cfg = config ~name:"hb" ~script:"sleep 30" in
  let cfg =
    { cfg with Ocapi_service.cf_retries = 1; cf_heartbeat_timeout = 0.4 }
  in
  Fun.protect
    ~finally:(fun () ->
      rm_rf state;
      rm_rf artifacts)
    (fun () ->
      let s = serve_quiet cfg ~requests:[ sim_request 1 ] in
      Alcotest.(check int) "reaped as a crash" 1 s.Ocapi_service.sm_crashes;
      Alcotest.(check int) "poisoned (budget 1)" 1 s.sm_poisoned;
      Alcotest.(check bool) "finished promptly, not after 30s" true
        (s.sm_seconds < 10.);
      match
        Ocapi_service.journal_load (Filename.concat state "journal.jsonl")
      with
      | Error m -> Alcotest.failf "journal: %s" m
      | Ok entries ->
        Alcotest.(check bool) "crash reason is the heartbeat kill" true
          (List.exists
             (function
               | Ocapi_service.J_crashed { jc_reason = "heartbeat"; _ } -> true
               | _ -> false)
             entries))

let test_serve_overload () =
  Lazy.force ensure_design;
  let state, artifacts, cfg =
    config ~name:"overload" ~script:write_artifact
  in
  let cfg = { cfg with Ocapi_service.cf_max_queue = 1 } in
  Fun.protect
    ~finally:(fun () ->
      rm_rf state;
      rm_rf artifacts)
    (fun () ->
      let s =
        serve_quiet cfg ~requests:[ sim_request 1; sim_request 2; sim_request 3 ]
      in
      Alcotest.(check int) "bounded queue rejects the overflow" 2
        s.Ocapi_service.sm_rejected;
      Alcotest.(check int) "the admitted job ran" 1 s.sm_completed)

let test_serve_recovery_exactly_once () =
  (* The tentpole crash shape: the server died after journaling a job's
     submission and start but before any completion — the artifact was
     never written.  A restarted server must run the job exactly once;
     a second restart must find nothing to do.  Recovered jobs replay
     from the journal alone, so no design registry is involved. *)
  let log =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi-service-runlog-%d" (Unix.getpid ()))
  in
  (try Sys.remove log with Sys_error _ -> ());
  let script = Printf.sprintf {|echo ran >> %s; %s|} log write_artifact in
  let state, artifacts, cfg = config ~name:"recover" ~script in
  Fun.protect
    ~finally:(fun () ->
      rm_rf state;
      rm_rf artifacts;
      try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      let jr =
        Ocapi_service.journal_open (Filename.concat state "journal.jsonl")
      in
      Ocapi_service.journal_append jr (submitted "c1" "k1");
      Ocapi_service.journal_append jr
        (Ocapi_service.J_started { jt_corr = "c1"; jt_attempt = 1 });
      Ocapi_service.journal_close jr;
      let s = serve_quiet cfg ~requests:[] in
      Alcotest.(check int) "one job recovered" 1 s.Ocapi_service.sm_recovered;
      Alcotest.(check int) "it completed" 1 s.sm_completed;
      Alcotest.(check bool) "artifact exists" true
        (Sys.file_exists (Filename.concat artifacts "c1.json"));
      let runs () =
        let ic = open_in log in
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        close_in ic;
        !n
      in
      Alcotest.(check int) "executed exactly once" 1 (runs ());
      let s2 = serve_quiet cfg ~requests:[] in
      Alcotest.(check int) "second restart recovers nothing" 0
        s2.Ocapi_service.sm_recovered;
      Alcotest.(check int) "and runs nothing" 0 s2.sm_completed;
      Alcotest.(check int) "still exactly one execution" 1 (runs ()))

(* --- disk-cache robustness ------------------------------------------------ *)

let s8 = Fixed.signed ~width:8 ~frac:0

let cache_teardown dir () =
  Flow.Cache.disable ();
  Flow.Cache.clear ();
  Flow.Cache.reset_stats ();
  rm_rf dir

let histories = [ ("probe", List.init 16 (fun i -> (i, Fixed.of_int s8 (i mod 7)))) ]

let test_cache_corrupted_entry () =
  let dir = tmp_dir "cache-corrupt" in
  Fun.protect ~finally:(cache_teardown dir)
    (fun () ->
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      Flow.Cache.enable ~dir ();
      Flow.Cache.store_histories "entry" histories;
      (* Overwrite the stored file with garbage, then with a truncated
         prefix: both must read back as a plain (counted) miss, not an
         exception. *)
      let file =
        match Sys.readdir dir with
        | [| f |] -> Filename.concat dir f
        | _ -> Alcotest.fail "expected exactly one cache file"
      in
      let size = (Unix.stat file).Unix.st_size in
      let rewrite bytes =
        let oc = open_out_bin file in
        output_string oc bytes;
        close_out oc
      in
      rewrite "not a marshalled cache entry at all";
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      Alcotest.(check bool) "garbage entry is a miss" true
        (Flow.Cache.find_histories "entry" = None);
      Alcotest.(check int) "the miss is counted" 1
        (Flow.Cache.stats ()).Flow.Cache.misses;
      (* Truncated to half: a torn write from a killed process. *)
      Flow.Cache.store_histories "entry" histories;
      let full =
        let ic = open_in_bin file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      Alcotest.(check int) "entry restored" size (String.length full);
      rewrite (String.sub full 0 (size / 2));
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      Alcotest.(check bool) "truncated entry is a miss" true
        (Flow.Cache.find_histories "entry" = None);
      Alcotest.(check int) "counted too" 1
        (Flow.Cache.stats ()).Flow.Cache.misses;
      (* And the slot recovers: a fresh store serves hits again. *)
      Flow.Cache.store_histories "entry" histories;
      Flow.Cache.clear ();
      Alcotest.(check bool) "recovered after restore" true
        (Flow.Cache.find_histories "entry" = Some histories))

let test_cache_unwritable_dir () =
  (* Point the cache at a path occupied by a regular file: every disk
     write fails, silently — in-memory caching must keep working. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ocapi-service-cachefile-%d" (Unix.getpid ()))
  in
  let oc = open_out_bin path in
  output_string oc "occupied";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Flow.Cache.disable ();
      Flow.Cache.clear ();
      Flow.Cache.reset_stats ();
      Flow.Cache.enable ~dir:path ();
      Flow.Cache.store_histories "entry" histories;
      let s = Flow.Cache.stats () in
      Alcotest.(check int) "no disk write recorded" 0 s.Flow.Cache.disk_writes;
      Alcotest.(check bool) "in-memory hit still served" true
        (Flow.Cache.find_histories "entry" = Some histories))

let suite =
  [
    Alcotest.test_case "seeded exponential backoff" `Quick test_backoff;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn and unknown lines" `Quick
      test_journal_torn_lines;
    Alcotest.test_case "replay semantics" `Quick test_replay;
    Alcotest.test_case "serve: success and journal dedup" `Quick
      test_serve_success;
    Alcotest.test_case "serve: crash, retry, converge" `Quick
      test_serve_crash_retry;
    Alcotest.test_case "serve: poisoned job" `Quick test_serve_poison;
    Alcotest.test_case "serve: heartbeat backstop" `Quick
      test_serve_heartbeat_backstop;
    Alcotest.test_case "serve: bounded-queue backpressure" `Quick
      test_serve_overload;
    Alcotest.test_case "serve: crash recovery exactly once" `Quick
      test_serve_recovery_exactly_once;
    Alcotest.test_case "cache: corrupted and truncated entries" `Quick
      test_cache_corrupted_entry;
    Alcotest.test_case "cache: unwritable directory" `Quick
      test_cache_unwritable_dir;
  ]
