(* The evaluation harness: regenerates every table and measurable claim
   of the paper (see DESIGN.md section 2 and EXPERIMENTS.md).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- t1      -- one target
     targets: t1 t1-json c3 c4 c5 c6 f5 figs fault par micro cache cache-stats
              batch service smoke

   T1  Table 1 (source lines / cycles-per-second / process size for
       HCOR and DECT under four simulation engines); also written
       machine-readably to BENCH_table1.json (t1-json writes only the
       file — the `make bench-json` entry point)
   C3  quantized-value vs bit-vector simulation speed (section 3)
   C4  three-phase vs two-phase cycle scheduling (section 4, fig 6)
   C5  datapath synthesis: operator sharing and run times (section 6)
   C6  generated-test-bench verification of the synthesized netlists
   F5  the DECT architecture audit (fig 5) with per-component gates
   fault  fault-campaign throughput: HCOR stuck-at coverage and a DECT
       SEU campaign; written machine-readably to BENCH_fault.json
   par  parallel SEU campaign scaling over 1/2/4 worker domains, with
       a bit-identity check against the serial report; written
       machine-readably to BENCH_parallel.json (`make bench-par`)
   micro  Bechamel micro-benchmarks of the engines' single cycles
   cache  Flow.Cache cold-vs-warm runs per registry engine, with a
       bit-identity check; written machine-readably to BENCH_cache.json
   cache-stats  print the hit/miss counters recorded in BENCH_cache.json
   batch  Ocapi_batch job-queue throughput, queue-latency percentiles and
       dedup hit rate over a mixed duplicated manifest; written
       machine-readably to BENCH_batch.json (`make bench-batch`)
   service  Ocapi_service campaign throughput with and without seeded
       chaos kills, journal-replay recovery cost, and a byte-identity
       check of the chaos artifact tree against the clean one; written
       machine-readably to BENCH_service.json (`make bench-service`)
   smoke  the CI smoke stage: every BENCH_*.json writer at a size that
       finishes in seconds (`make bench-smoke`) *)

let hcor_design () =
  let bits = Dect_stimuli.burst ~seed:1 () in
  let tx = Dect_stimuli.transmit bits in
  let rx = Dect_stimuli.channel ~snr_db:25.0 ~seed:1 tx in
  let samples =
    Dect_stimuli.quantize Hcor.sample_format (Array.map (fun x -> x /. 2.0) rx)
  in
  (Hcor.create ~stimulus:(Hcor.sample_stimulus samples) ()).Hcor.system

let dect_design () =
  let d =
    Dect_transceiver.create
      ~stimulus:(fun c ->
        Some
          (Fixed.of_float ~overflow:Fixed.Saturate Dect_transceiver.sample_format
             (sin (float c *. 0.37) /. 2.2)))
      ()
  in
  d.Dect_transceiver.system

let rs_design () =
  (Rs_codec.create
     ~data_stimulus:(Rs_codec.data_stimulus ())
     ~err_stimulus:(Rs_codec.err_stimulus ()) ())
    .Rs_codec.system

let cpu_design () =
  (Acc_cpu.create ~io_stimulus:(Acc_cpu.io_stimulus ()) ()).Acc_cpu.system

let gates ?macro_of_kernel sys =
  let _, rep = Synthesize.synthesize ?macro_of_kernel sys in
  rep.Synthesize.total.Netlist.gate_equivalents

(* Every measured rate also lands one line in the perf ledger
   (PERF_LEDGER.jsonl or $OCAPI_LEDGER) — the time series behind
   `ocapi report` and the CI perf gate.  The workload size is folded
   into the bench name so a smoke-sized run and a full run never share
   a baseline. *)
let ledger_entries = ref 0

let ledger ?digest ?domains ~bench ~engine ~unit_ value =
  Ocapi_obs.Ledger.append
    (Ocapi_obs.Ledger.entry ?digest ?domains ~unit_ ~bench ~engine value);
  incr ledger_entries

let ledger_note () =
  if !ledger_entries > 0 then
    Printf.printf "ledger: appended %d entries to %s\n" !ledger_entries
      (Ocapi_obs.Ledger.default_path ())

(* ---- T1: Table 1 ---------------------------------------------------------- *)

let table1_rows () =
  let measure_design ~design ~sys ~src_lines ~gate_count ~macro_of_kernel
      ~cycles_of =
    let ms =
      List.map
        (fun engine ->
          Metrics.measure ~ocaml_source_lines:src_lines ?macro_of_kernel sys
            engine ~cycles:(cycles_of engine))
        Metrics.all_engines
    in
    (design, Cycle_system.digest sys, gate_count, ms)
  in
  let hcor = hcor_design () in
  let hcor_row =
    measure_design ~design:"HCOR" ~sys:hcor ~src_lines:(Hcor.source_lines ())
      ~gate_count:(gates hcor) ~macro_of_kernel:None
      ~cycles_of:(function
        | Metrics.Interpreted_objects -> 4000
        | Metrics.Compiled_code -> 40000
        | Metrics.Native_code -> 400000
        | Metrics.Rt_event_driven -> 1500
        | Metrics.Gate_netlist -> 300)
  in
  let dect = dect_design () in
  let dect_row =
    measure_design ~design:"DECT" ~sys:dect
      ~src_lines:(Dect_transceiver.source_lines ())
      ~gate_count:(gates ~macro_of_kernel:Dect_transceiver.macro_of_kernel dect)
      ~macro_of_kernel:(Some Dect_transceiver.macro_of_kernel)
      ~cycles_of:(function
        | Metrics.Interpreted_objects -> 1000
        | Metrics.Compiled_code -> 20000
        | Metrics.Native_code -> 200000
        | Metrics.Rt_event_driven -> 300
        | Metrics.Gate_netlist -> 60)
  in
  let rs = rs_design () in
  let rs_row =
    measure_design ~design:"RS" ~sys:rs ~src_lines:(Rs_codec.source_lines ())
      ~gate_count:(gates rs) ~macro_of_kernel:None
      ~cycles_of:(function
        | Metrics.Interpreted_objects -> 4000
        | Metrics.Compiled_code -> 40000
        | Metrics.Native_code -> 400000
        | Metrics.Rt_event_driven -> 2000
        | Metrics.Gate_netlist -> 400)
  in
  let cpu = cpu_design () in
  let cpu_row =
    measure_design ~design:"CPU" ~sys:cpu
      ~src_lines:(Acc_cpu.source_lines ())
      ~gate_count:(gates ~macro_of_kernel:Ram_cell.macro_of_kernel cpu)
      ~macro_of_kernel:(Some Ram_cell.macro_of_kernel)
      ~cycles_of:(function
        | Metrics.Interpreted_objects -> 4000
        | Metrics.Compiled_code -> 40000
        | Metrics.Native_code -> 400000
        | Metrics.Rt_event_driven -> 2000
        | Metrics.Gate_netlist -> 400)
  in
  [ hcor_row; dect_row; rs_row; cpu_row ]

let table1_json rows =
  let open Ocapi_obs.Json in
  Obj
    [
      ("table", String "table1");
      ( "description",
        String "performances of interpreted and compiled approaches" );
      ( "designs",
        List
          (List.map
             (fun (design, _digest, gate_count, ms) ->
               Obj
                 [
                   ("design", String design);
                   ("gate_equivalents", Int gate_count);
                   ( "engines",
                     List
                       (List.map
                          (fun m ->
                            Obj
                              [
                                ( "engine",
                                  String
                                    (Metrics.engine_label m.Metrics.m_engine)
                                );
                                ("cycles", Int m.Metrics.m_cycles);
                                ("seconds", Float m.Metrics.m_seconds);
                                ( "cycles_per_second",
                                  Float m.Metrics.m_cycles_per_second );
                                ( "process_bytes",
                                  Int m.Metrics.m_process_bytes );
                                ("source_lines", Int m.Metrics.m_source_lines);
                              ])
                          ms) );
                 ])
             rows) );
    ]

let write_table1_json rows =
  let oc = open_out "BENCH_table1.json" in
  output_string oc (Ocapi_obs.Json.to_string (table1_json rows));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_table1.json";
  List.iter
    (fun (design, digest, _gate_count, ms) ->
      List.iter
        (fun m ->
          ledger ~digest
            ~bench:("t1:" ^ String.lowercase_ascii design)
            ~engine:(Metrics.engine_label m.Metrics.m_engine)
            ~unit_:"cycles/s" m.Metrics.m_cycles_per_second;
          (* The gate rows additionally feed a registry-named series,
             so the regression gate tracks the synthesized-netlist
             engine under the same key the CLI uses. *)
          if m.Metrics.m_engine = Metrics.Gate_netlist then
            ledger ~digest
              ~bench:("t1:gate:" ^ String.lowercase_ascii design)
              ~engine:"gate" ~unit_:"cycles/s" m.Metrics.m_cycles_per_second)
        ms)
    rows

let t1 () =
  print_endline
    "== T1: Table 1 -- performances of interpreted and compiled approaches ==";
  let rows = table1_rows () in
  List.iter
    (fun (design, _digest, gate_count, ms) ->
      Format.printf "%a@."
        (fun ppf -> Metrics.pp_table ppf ~design ~gates:gate_count)
        ms;
      print_newline ())
    rows;
  write_table1_json rows;
  print_newline ()

(* Machine-readable Table 1 only (the `make bench-json` entry point). *)
let t1_json () = write_table1_json (table1_rows ())

(* ---- C3: quantization vs bit vectors -------------------------------------- *)

let c3 () =
  print_endline "== C3: quantized-value vs bit-vector simulation (section 3) ==";
  let fmt = Fixed.signed ~width:12 ~frac:8 in
  let acc_fmt = Fixed.signed ~width:30 ~frac:16 in
  let rng = Random.State.make [| 3 |] in
  let values =
    Array.init 256 (fun _ ->
        let lo = Fixed.min_mantissa fmt and hi = Fixed.max_mantissa fmt in
        Fixed.create fmt
          (Int64.add lo
             (Random.State.int64 rng (Int64.add (Int64.sub hi lo) 1L))))
  in
  let coefs = Array.init 16 (fun i -> values.(i * 3 mod 256)) in
  (* One "cycle" of work: a 16-tap MAC plus a saturating resize. *)
  let mac_fixed offset =
    let acc = ref (Fixed.zero acc_fmt) in
    for i = 0 to 15 do
      acc :=
        Fixed.resize acc_fmt
          (Fixed.add !acc (Fixed.mul values.((offset + i) land 255) coefs.(i)))
    done;
    Fixed.resize ~overflow:Fixed.Saturate fmt !acc
  in
  let bv_values = Array.map Bitvector.of_fixed values in
  let bv_coefs = Array.map Bitvector.of_fixed coefs in
  let mac_bv offset =
    let acc = ref (Bitvector.of_fixed (Fixed.zero acc_fmt)) in
    for i = 0 to 15 do
      acc :=
        Bitvector.resize acc_fmt
          (Bitvector.add !acc
             (Bitvector.mul bv_values.((offset + i) land 255) bv_coefs.(i)))
    done;
    Bitvector.resize ~overflow:Fixed.Saturate fmt !acc
  in
  let time f n =
    let t0 = Unix.gettimeofday () in
    for k = 0 to n - 1 do
      ignore (Sys.opaque_identity (f k))
    done;
    Unix.gettimeofday () -. t0
  in
  ignore (time mac_fixed 1000);
  ignore (time mac_bv 100);
  let n_fixed = 200_000 and n_bv = 5_000 in
  let t_fixed = time mac_fixed n_fixed in
  let t_bv = time mac_bv n_bv in
  let per_fixed = t_fixed /. float n_fixed and per_bv = t_bv /. float n_bv in
  Printf.printf
    "16-tap MAC: quantized %.2f us, bit-vector %.2f us -> x%.0f speedup\n"
    (per_fixed *. 1e6) (per_bv *. 1e6) (per_bv /. per_fixed);
  print_endline
    "(paper: \"simulation of the quantization rather than the bit-vector\n\
    \ representation allows significant simulation speedups\")";
  print_newline ()

(* ---- C4: three-phase vs two-phase scheduling ------------------------------- *)

let c4 () =
  print_endline "== C4: the three-phase cycle scheduler (section 4, fig 6) ==";
  let s8 = Fixed.signed ~width:8 ~frac:0 in
  let clk = Clock.default in
  let state = Signal.Reg.create clk "c4_state" s8 in
  let sfg =
    Sfg.build "c4_step" (fun b ->
        let reply = Sfg.Builder.input b "reply" s8 in
        Sfg.Builder.output b "query" (Signal.resize s8 (Signal.reg_q state));
        Sfg.Builder.assign_resized b state Signal.(reply +: consti s8 0))
  in
  let fsm = Fsm.create "c4_ctl" in
  let s0 = Fsm.initial fsm "s0" in
  Fsm.(s0 |-- always |+ sfg |-> s0);
  let k =
    Dataflow.Kernel.create "c4_incr"
      ~formats:[ ("in", s8); ("out", s8) ]
      ~inputs:[ ("in", 1) ] ~outputs:[ ("out", 1) ]
      (fun consumed ->
        match consumed with
        | [ ("in", [ v ]) ] ->
          [ ("out", [ Fixed.resize s8 (Fixed.add v (Fixed.of_int s8 1)) ]) ]
        | _ -> assert false)
  in
  let sys = Cycle_system.create "c4_fig6" in
  let t = Cycle_system.add_timed sys "stepper" fsm in
  let u = Cycle_system.add_untimed sys k in
  let p = Cycle_system.add_output sys "q" in
  ignore (Cycle_system.connect sys (t, "query") [ (u, "in"); (p, "in") ]);
  ignore (Cycle_system.connect sys (u, "out") [ (t, "reply") ]);
  (match Cycle_system.run sys 100 with
  | () ->
    print_endline
      "three-phase scheduler: fig 6 cycle resolved, 100 cycles simulated"
  | exception Cycle_system.Deadlock _ ->
    print_endline "three-phase scheduler: DEADLOCK (unexpected!)");
  Cycle_system.reset sys;
  (match Cycle_system.run ~two_phase:true sys 1 with
  | () -> print_endline "two-phase scheduler: resolved (unexpected!)"
  | exception Cycle_system.Deadlock w ->
    Printf.printf "two-phase scheduler: deadlock, waiting on [%s]\n"
      (String.concat "; " w));
  (* Overhead of the extra phase on a loop-free design. *)
  let sys = hcor_design () in
  let time two_phase =
    Cycle_system.reset sys;
    let t0 = Unix.gettimeofday () in
    Cycle_system.run ~two_phase sys 2000;
    Unix.gettimeofday () -. t0
  in
  ignore (time false);
  let t3 = time false and t2 = time true in
  Printf.printf
    "loop-free design (HCOR, 2000 cycles): three-phase %.3fs, two-phase %.3fs \
     (x%.2f overhead)\n\n"
    t3 t2 (t3 /. t2)

(* ---- C5: datapath synthesis and operator sharing --------------------------- *)

let c5 () =
  print_endline
    "== C5: datapath synthesis with word-level operator sharing (section 6) ==";
  let sys = dect_design () in
  let t0 = Unix.gettimeofday () in
  let _, shared =
    Synthesize.synthesize ~macro_of_kernel:Dect_transceiver.macro_of_kernel sys
  in
  let t_shared = Unix.gettimeofday () -. t0 in
  let _, unshared =
    Synthesize.synthesize
      ~options:{ Synthesize.default_options with Synthesize.share_operators = false }
      ~macro_of_kernel:Dect_transceiver.macro_of_kernel sys
  in
  Printf.printf
    "DECT with sharing:    %6d gate-equivalents (%.2fs total synthesis)\n"
    shared.Synthesize.total.Netlist.gate_equivalents t_shared;
  Printf.printf "DECT without sharing: %6d gate-equivalents\n"
    unshared.Synthesize.total.Netlist.gate_equivalents;
  (* The post-synthesis cleanup the paper delegates to logic synthesis. *)
  let nl, _ =
    Synthesize.synthesize ~macro_of_kernel:Dect_transceiver.macro_of_kernel sys
  in
  let _, opt_stats = Netopt.run nl in
  Format.printf "post-optimization (\"Synopsys DC\" role): %a@." Netopt.pp_stats
    opt_stats;
  List.iter
    (fun name ->
      match
        ( List.find_opt
            (fun c -> c.Synthesize.cr_name = name)
            shared.Synthesize.components,
          List.find_opt
            (fun c -> c.Synthesize.cr_name = name)
            unshared.Synthesize.components )
      with
      | Some s, Some u ->
        Printf.printf
          "  %-10s %2d instr: %2d ops -> %2d units; %5d gates shared vs %5d \
           unshared (%.3fs)\n"
          name s.Synthesize.cr_instructions s.Synthesize.cr_ops_before_sharing
          (List.fold_left (fun a (_, n) -> a + n) 0 s.Synthesize.cr_shared_units)
          s.Synthesize.cr_gate_equivalents u.Synthesize.cr_gate_equivalents
          s.Synthesize.cr_seconds
      | _, _ -> ())
    [ "dp_equ"; "dp_mac0"; "dp_sum"; "dp_corr" ];
  (match
     List.find_opt
       (fun c -> c.Synthesize.cr_name = "dp_equ")
       shared.Synthesize.components
   with
  | Some c ->
    Printf.printf
      "57-instruction datapath synthesized in %.3fs (paper: \"less than 15 \
       minutes\")\n"
      c.Synthesize.cr_seconds
  | None -> ());
  print_newline ()

(* ---- C6: generated test benches verify the netlists ------------------------ *)

let c6 () =
  print_endline "== C6: generated-test-bench verification (section 6, fig 8) ==";
  let hcor = hcor_design () in
  let r = Synthesize.verify hcor ~cycles:400 in
  Printf.printf "HCOR netlist:  %5d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches);
  let dect = dect_design () in
  let r =
    Synthesize.verify ~macro_of_kernel:Dect_transceiver.macro_of_kernel dect
      ~cycles:120
  in
  Printf.printf "DECT netlist:  %5d vectors, %d mismatches\n"
    r.Synthesize.vectors_checked
    (List.length r.Synthesize.mismatches);
  let vectors = Testbench.record hcor ~cycles:50 in
  let tb = Testbench.vhdl hcor vectors in
  Printf.printf
    "generated VHDL test bench: %d lines, %d input and %d output vectors\n\n"
    (List.length (String.split_on_char '\n' tb))
    (List.length vectors.Testbench.tb_inputs)
    (List.length vectors.Testbench.tb_outputs)

(* ---- F5: architecture audit -------------------------------------------------- *)

let f5 () =
  print_endline "== F5: the DECT transceiver architecture (fig 5) ==";
  let d =
    Dect_transceiver.create
      ~stimulus:(fun _ -> Some (Fixed.zero Dect_transceiver.sample_format))
      ()
  in
  let sys = d.Dect_transceiver.system in
  Printf.printf "timed components: %d (VLIW + PC controller + 22 datapaths)\n"
    (List.length (Cycle_system.timed_components sys));
  Printf.printf "untimed RAM cells: %d\n"
    (List.length (Cycle_system.untimed_components sys));
  let counts = List.map snd d.Dect_transceiver.instruction_counts in
  Printf.printf "instructions per datapath: %d .. %d (paper: 2 .. 57)\n"
    (List.fold_left min 99 counts)
    (List.fold_left max 0 counts);
  let _, rep =
    Synthesize.synthesize ~macro_of_kernel:Dect_transceiver.macro_of_kernel sys
  in
  Printf.printf "total: %d gate-equivalents (paper: 75 Kgates)\n"
    rep.Synthesize.total.Netlist.gate_equivalents;
  let nl, _ =
    Synthesize.synthesize ~macro_of_kernel:Dect_transceiver.macro_of_kernel sys
  in
  let depth, cyclic = Netlist.combinational_depth nl in
  Printf.printf
    "longest combinational chain: %d elements (%d on gated selection cycles)\n"
    depth cyclic;
  List.iter
    (fun c ->
      Printf.printf "  %-12s %3d instr %6d gates\n" c.Synthesize.cr_name
        c.Synthesize.cr_instructions c.Synthesize.cr_gate_equivalents)
    rep.Synthesize.components;
  print_newline ()

(* ---- figs: the paper's diagrams, regenerated ------------------------------- *)

let figs () =
  print_endline "== figs: the paper's diagrams regenerated from the capture ==";
  if not (Sys.file_exists "_generated") then Unix.mkdir "_generated" 0o755;
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  (* Fig 2: the VLIW controller's execute/hold machine. *)
  let d =
    Dect_transceiver.create
      ~stimulus:(fun _ -> Some (Fixed.zero Dect_transceiver.sample_format))
      ()
  in
  (match Cycle_system.timed_components d.Dect_transceiver.system with
  | (_, vliw) :: _ -> write "_generated/fig2_vliw_controller.dot" (Fsm.to_dot vliw)
  | [] -> ());
  (* Fig 5: the system architecture. *)
  write "_generated/fig5_dect_architecture.dot"
    (Cycle_system.to_dot d.Dect_transceiver.system);
  (* Fig 4: the example machine of the paper, spelled in the DSL. *)
  let clk = Clock.default in
  let eof = Signal.Reg.create clk "fig4_eof" Fixed.bit_format in
  let f = Fsm.create "f" in
  let s0 = Fsm.initial f "s0" and s1 = Fsm.state f "s1" in
  Fsm.(s0 |-- always |+ Sfg.nop "sfg1" |-> s1);
  Fsm.(s1 |-- cnd (Signal.reg_q eof) |+ Sfg.nop "sfg2" |-> s1);
  Fsm.(s1 |-- cnd Signal.(~:(reg_q eof)) |+ Sfg.nop "sfg3" |-> s0);
  write "_generated/fig4_example_fsm.dot" (Fsm.to_dot f);
  (* A waveform of the transceiver for good measure. *)
  Vcd.write d.Dect_transceiver.system ~cycles:120
    ~path:"_generated/dect_waves.vcd";
  print_endline "wrote _generated/dect_waves.vcd";
  print_newline ()

(* ---- Bechamel micro-benchmarks ------------------------------------------------ *)

let micro () =
  print_endline "== micro: Bechamel single-cycle benchmarks (HCOR) ==";
  let open Bechamel in
  (* One session per registry engine, each on its own freshly built design so
     no two engine sessions share mutable register state. *)
  let sessions =
    List.map
      (fun e ->
        let module E = (val e : Ocapi_engine.ENGINE) in
        let ses = E.make (hcor_design ()) in
        ses.Ocapi_engine.ses_reset ();
        ses)
      (Ocapi_engine.all ())
  in
  let nl, _ = Synthesize.synthesize (hcor_design ()) in
  let gate_sim = Netlist.Sim.create nl in
  Netlist.Sim.settle gate_sim;
  (* One Test.make per Table 1 row. *)
  let tests =
    Test.make_grouped ~name:"table1"
      (List.map
         (fun ses ->
           Test.make ~name:ses.Ocapi_engine.ses_engine
             (Staged.stage (fun () -> ses.Ocapi_engine.ses_step ())))
         sessions
      @ [
          (let tick = ref 0 in
           Test.make ~name:"gate-netlist"
             (Staged.stage (fun () ->
                  incr tick;
                  Netlist.Sim.set_input gate_sim "sample_in"
                    (Int64.of_int ((!tick * 7 mod 61) - 30));
                  Netlist.Sim.settle gate_sim;
                  Netlist.Sim.clock gate_sim)));
        ])
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> Printf.printf "  %-40s %12.0f ns/cycle\n" name ns
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    ols;
  List.iter (fun ses -> ses.Ocapi_engine.ses_close ()) sessions;
  print_newline ()

(* ---- fault: fault-campaign coverage and throughput ----------------------- *)

(* [sa_faults]/[seu_runs] scale the campaigns: the default is the full
   benchmark, the CI smoke stage passes small values (see [smoke]). *)
let fault_bench ?(sa_faults = 200) ?(seu_runs = 1000) () =
  print_endline "== fault: stuck-at coverage and SEU campaign throughput ==";
  let hcor = hcor_design () in
  let dect = dect_design () in
  let t0 = Unix.gettimeofday () in
  let cmp =
    Ocapi_fault.stuck_at_optimized ~max_faults:sa_faults ~seed:1 hcor
      ~cycles:24
  in
  let sa = cmp.Ocapi_fault.sc_pre in
  let sa_seconds = Unix.gettimeofday () -. t0 in
  let sa_rate =
    float_of_int (sa.Ocapi_fault.st_simulated
                  + cmp.Ocapi_fault.sc_post.Ocapi_fault.st_simulated)
    /. sa_seconds
  in
  Printf.printf
    "hcor stuck-at: universe %d, collapsed %d, simulated %d, coverage %.1f%% \
     (%.1f faults/s)\n"
    sa.Ocapi_fault.st_universe sa.Ocapi_fault.st_collapsed
    sa.Ocapi_fault.st_simulated
    (100.0 *. sa.Ocapi_fault.st_coverage)
    sa_rate;
  Printf.printf
    "hcor stuck-at post-Netopt: universe %d, simulated %d, coverage %.1f%%\n"
    cmp.Ocapi_fault.sc_post.Ocapi_fault.st_universe
    cmp.Ocapi_fault.sc_post.Ocapi_fault.st_simulated
    (100.0 *. cmp.Ocapi_fault.sc_post.Ocapi_fault.st_coverage);
  let t1 = Unix.gettimeofday () in
  let seu =
    Ocapi_fault.seu_campaign ~engine:"compiled" ~runs:seu_runs ~seed:1 dect
      ~cycles:64
  in
  let seu_seconds = Unix.gettimeofday () -. t1 in
  let seu_rate = float_of_int seu.Ocapi_fault.seu_runs /. seu_seconds in
  Printf.printf
    "dect seu (%s): %d runs -- masked %d, sdc %d, detected %d (%.0f runs/s)\n"
    seu.Ocapi_fault.seu_engine seu.Ocapi_fault.seu_runs
    seu.Ocapi_fault.seu_masked seu.Ocapi_fault.seu_sdc
    seu.Ocapi_fault.seu_detected seu_rate;
  (* The gallery designs ride the same campaign shapes, so the perf
     gate tracks them from their first commit. *)
  let gallery_seu name sys ~cycles =
    let t = Unix.gettimeofday () in
    let report =
      Ocapi_fault.seu_campaign ~engine:"compiled" ~runs:seu_runs ~seed:1 sys
        ~cycles
    in
    let seconds = Unix.gettimeofday () -. t in
    let rate = float_of_int report.Ocapi_fault.seu_runs /. seconds in
    Printf.printf
      "%s seu (%s): %d runs -- masked %d, sdc %d, detected %d (%.0f runs/s)\n"
      name report.Ocapi_fault.seu_engine report.Ocapi_fault.seu_runs
      report.Ocapi_fault.seu_masked report.Ocapi_fault.seu_sdc
      report.Ocapi_fault.seu_detected rate;
    ledger
      ~digest:(Cycle_system.digest sys)
      ~bench:(Printf.sprintf "fault:seu:%s:r%d" name seu_runs)
      ~engine:"compiled" ~unit_:"runs/s" rate;
    (report, seconds, rate)
  in
  let seu_rs, rs_seconds, rs_rate = gallery_seu "rs" (rs_design ()) ~cycles:45 in
  let seu_cpu, cpu_seconds, cpu_rate =
    gallery_seu "cpu" (cpu_design ()) ~cycles:Acc_cpu.check_cycles
  in
  let json =
    Ocapi_obs.Json.(
      Obj
        [
          ( "stuck_at",
            Obj
              [
                ("report", Ocapi_fault.stuck_report_json sa);
                ("optimized", Ocapi_fault.stuck_compare_json cmp);
                ("seconds", Float sa_seconds);
                ("faults_per_second", Float sa_rate);
              ] );
          ( "seu",
            Obj
              [
                ("report", Ocapi_fault.seu_report_json seu);
                ("seconds", Float seu_seconds);
                ("runs_per_second", Float seu_rate);
              ] );
          ( "seu_rs",
            Obj
              [
                ("report", Ocapi_fault.seu_report_json seu_rs);
                ("seconds", Float rs_seconds);
                ("runs_per_second", Float rs_rate);
              ] );
          ( "seu_cpu",
            Obj
              [
                ("report", Ocapi_fault.seu_report_json seu_cpu);
                ("seconds", Float cpu_seconds);
                ("runs_per_second", Float cpu_rate);
              ] );
        ])
  in
  let oc = open_out "BENCH_fault.json" in
  output_string oc (Ocapi_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_fault.json";
  ledger
    ~digest:(Cycle_system.digest hcor)
    ~bench:(Printf.sprintf "fault:stuck-at:hcor:f%d" sa_faults)
    ~engine:"gates" ~unit_:"faults/s" sa_rate;
  ledger
    ~digest:(Cycle_system.digest hcor)
    ~bench:(Printf.sprintf "fault:stuck-at-opt:hcor:f%d" sa_faults)
    ~engine:"gates" ~unit_:"coverage"
    cmp.Ocapi_fault.sc_post.Ocapi_fault.st_coverage;
  ledger
    ~digest:(Cycle_system.digest dect)
    ~bench:(Printf.sprintf "fault:seu:dect:r%d" seu_runs)
    ~engine:"compiled" ~unit_:"runs/s" seu_rate;
  print_newline ()

(* ---- par: parallel campaign scaling --------------------------------------- *)

let par () =
  print_endline "== par: parallel SEU campaign scaling over worker domains ==";
  let runs = 400 and cycles = 48 and seed = 1 in
  let campaign domains =
    let t0 = Unix.gettimeofday () in
    let report =
      Ocapi_fault.seu_campaign ~engine:"compiled" ~runs ~seed ~domains
        ~replicate:dect_design (dect_design ()) ~cycles
    in
    (report, Unix.gettimeofday () -. t0)
  in
  ignore (campaign 1) (* warm-up *);
  let serial, serial_seconds = campaign 1 in
  Printf.printf "available domains: %d\n" (Ocapi_parallel.available_domains ());
  let rows =
    List.map
      (fun domains ->
        let report, seconds =
          if domains = 1 then (serial, serial_seconds) else campaign domains
        in
        let rate = float_of_int runs /. seconds in
        let identical = report = serial in
        Printf.printf
          "dect seu, %d domain(s): %.2fs, %.0f runs/s, x%.2f vs serial%s\n"
          domains seconds rate (serial_seconds /. seconds)
          (if identical then "" else "  REPORT DIFFERS FROM SERIAL!");
        (domains, seconds, rate, identical))
      [ 1; 2; 4 ]
  in
  let json =
    Ocapi_obs.Json.(
      Obj
        [
          ("design", String "dect");
          ("engine", String "compiled");
          ("runs", Int runs);
          ("cycles", Int cycles);
          ("seed", Int seed);
          ("available_domains", Int (Ocapi_parallel.available_domains ()));
          ("serial_seconds", Float serial_seconds);
          ( "rows",
            List
              (List.map
                 (fun (domains, seconds, rate, identical) ->
                   Obj
                     [
                       ("domains", Int domains);
                       ("seconds", Float seconds);
                       ("runs_per_second", Float rate);
                       ("speedup", Float (serial_seconds /. seconds));
                       ("report_identical_to_serial", Bool identical);
                     ])
                 rows) );
        ])
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Ocapi_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_parallel.json";
  let dect_digest = Cycle_system.digest (dect_design ()) in
  List.iter
    (fun (domains, _seconds, rate, _identical) ->
      ledger ~digest:dect_digest ~domains
        ~bench:(Printf.sprintf "par:seu:dect:d%d" domains)
        ~engine:"compiled" ~unit_:"runs/s" rate)
    rows;
  print_newline ()

(* ---- cache: keyed result cache, cold vs warm ------------------------------ *)

let cache_dir = "_generated/cache"

let cache_bench () =
  print_endline "== cache: Flow.Cache cold vs warm simulation runs (HCOR) ==";
  (* Start genuinely cold: drop any disk entries left by a previous run. *)
  if Sys.file_exists cache_dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".cache" then
          Sys.remove (Filename.concat cache_dir f))
      (Sys.readdir cache_dir);
  Flow.Cache.enable ~dir:cache_dir ();
  Flow.Cache.clear ();
  Flow.Cache.reset_stats ();
  let cycles = 400 in
  let sys = hcor_design () in
  let rows =
    List.map
      (fun e ->
        let engine = Ocapi_engine.name_of e in
        let time () =
          let t0 = Unix.gettimeofday () in
          let h = Flow.simulate ~engine sys ~cycles in
          (h, Unix.gettimeofday () -. t0)
        in
        let cold_histories, cold_seconds = time () in
        let warm_histories, warm_seconds = time () in
        let identical = cold_histories = warm_histories in
        Printf.printf "%-10s cold %.4fs, warm %.4fs (x%.1f)%s\n" engine
          cold_seconds warm_seconds
          (cold_seconds /. warm_seconds)
          (if identical then "" else "  WARM RUN DIFFERS FROM COLD!");
        (engine, cold_seconds, warm_seconds, identical))
      (Ocapi_engine.all ())
  in
  let st = Flow.Cache.stats () in
  Printf.printf "cache: %d hits (%d from disk), %d misses, %d entries\n"
    st.Flow.Cache.hits st.Flow.Cache.disk_hits st.Flow.Cache.misses
    st.Flow.Cache.entries;
  let json =
    Ocapi_obs.Json.(
      Obj
        [
          ("design", String "hcor");
          ("cycles", Int cycles);
          ("hits", Int st.Flow.Cache.hits);
          ("disk_hits", Int st.Flow.Cache.disk_hits);
          ("misses", Int st.Flow.Cache.misses);
          ("entries", Int st.Flow.Cache.entries);
          ("disk_writes", Int st.Flow.Cache.disk_writes);
          ( "rows",
            List
              (List.map
                 (fun (engine, cold_seconds, warm_seconds, identical) ->
                   Obj
                     [
                       ("engine", String engine);
                       ("cold_seconds", Float cold_seconds);
                       ("warm_seconds", Float warm_seconds);
                       ("speedup", Float (cold_seconds /. warm_seconds));
                       ("warm_identical_to_cold", Bool identical);
                     ])
                 rows) );
        ])
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Ocapi_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_cache.json";
  Flow.Cache.disable ();
  Flow.Cache.clear ();
  print_newline ()

(* ---- batch: job-queue throughput, queue latency and dedup ------------------ *)

(* A mixed campaign manifest with systematic duplicates: every job is
   submitted twice, so half the submissions should coalesce.  [seeds]
   scales the SEU sweep; the smoke stage shrinks everything. *)
let batch_requests ~seeds ~seu_runs =
  let open Ocapi_batch in
  let base =
    List.concat
      [
        List.concat_map
          (fun seed ->
            [
              {
                rq_job =
                  Seu
                    {
                      seu_design = "hcor";
                      seu_engine = "compiled";
                      seu_runs;
                      seu_cycles = 32;
                      seu_seed = seed;
                    };
                rq_priority = Normal;
                rq_timeout = None;
                rq_label = None;
              };
            ])
          (List.init seeds (fun i -> i + 1));
        List.map
          (fun engine ->
            {
              rq_job =
                Simulate
                  {
                    sim_design = "hcor";
                    sim_engine = engine;
                    sim_cycles = 200;
                    sim_seed = 1;
                  };
              rq_priority = High;
              rq_timeout = None;
              rq_label = None;
            })
          [ "interp"; "compiled"; "rtl" ];
        [
          {
            rq_job =
              Stuck_at
                {
                  sa_design = "hcor";
                  sa_cycles = 24;
                  sa_seed = 1;
                  sa_max_faults = Some 60;
                };
            rq_priority = Low;
            rq_timeout = None;
            rq_label = None;
          };
          {
            rq_job = Engine_sweep { sw_design = "hcor"; sw_cycles = 120 };
            rq_priority = Normal;
            rq_timeout = None;
            rq_label = None;
          };
        ];
      ]
  in
  base @ base

let batch_bench ?(domains = 2) ?(seeds = 6) ?(seu_runs = 150) () =
  Printf.printf
    "== batch: job-queue throughput and dedup (%d worker domains) ==\n" domains;
  Ocapi_batch.register_design ~name:"hcor" hcor_design;
  Ocapi_batch.register_design
    ~macro_of_kernel:Dect_transceiver.macro_of_kernel ~name:"dect" dect_design;
  let requests = batch_requests ~seeds ~seu_runs in
  let jobs = List.length requests in
  let t0 = Unix.gettimeofday () in
  let stats, telemetry =
    Ocapi_obs.run_with_telemetry ~label:"batch" (fun () ->
        let t =
          Ocapi_batch.create ~domains ~artifact_dir:"_generated/batch-bench" ()
        in
        let handles = List.map (Ocapi_batch.submit_request t) requests in
        List.iter
          (fun h ->
            match Ocapi_batch.await t h with
            | Ocapi_batch.Completed _ -> ()
            | Ocapi_batch.Failed d ->
              Printf.printf "  FAILED %s: %s\n" (Ocapi_batch.label_of h)
                (Ocapi_error.to_string d)
            | Ocapi_batch.Cancelled ->
              Printf.printf "  CANCELLED %s\n" (Ocapi_batch.label_of h))
          handles;
        Ocapi_batch.shutdown t;
        Ocapi_batch.stats t)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let throughput = float_of_int jobs /. seconds in
  (* Queue-latency percentiles out of the merged worker telemetry. *)
  let p50, p95 =
    match List.assoc_opt "batch.queue.wait_us" telemetry.Ocapi_obs.rp_metrics with
    | Some (Ocapi_obs.Histogram_v hs) ->
      (Ocapi_obs.hist_quantile hs 0.5, Ocapi_obs.hist_quantile hs 0.95)
    | _ -> (Float.nan, Float.nan)
  in
  Printf.printf
    "%d jobs in %.2fs -> %.1f jobs/s; queue wait p50 %.0f us, p95 %.0f us\n"
    jobs seconds throughput p50 p95;
  Printf.printf
    "dedup: %d submitted, %d executed, %d coalesced (%.0f%% hit rate), %d \
     artifacts\n"
    stats.Ocapi_batch.bs_submitted stats.Ocapi_batch.bs_executed
    stats.Ocapi_batch.bs_deduped
    (100.0 *. stats.Ocapi_batch.bs_dedup_hit_rate)
    stats.Ocapi_batch.bs_artifacts_written;
  let json =
    Ocapi_obs.Json.(
      Obj
        [
          ("jobs", Int jobs);
          ("domains", Int domains);
          ("seconds", Float seconds);
          ("throughput_jobs_per_second", Float throughput);
          ("queue_wait_p50_us", Float p50);
          ("queue_wait_p95_us", Float p95);
          ( "dedup",
            Obj
              [
                ("submitted", Int stats.Ocapi_batch.bs_submitted);
                ("executed", Int stats.Ocapi_batch.bs_executed);
                ("deduped", Int stats.Ocapi_batch.bs_deduped);
                ("hit_rate", Float stats.Ocapi_batch.bs_dedup_hit_rate);
              ] );
          ("completed", Int stats.Ocapi_batch.bs_completed);
          ("failed", Int stats.Ocapi_batch.bs_failed);
          ("artifacts_written", Int stats.Ocapi_batch.bs_artifacts_written);
        ])
  in
  let oc = open_out "BENCH_batch.json" in
  output_string oc (Ocapi_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_batch.json";
  ledger ~domains
    ~bench:(Printf.sprintf "batch:mixed:j%d:d%d" jobs domains)
    ~engine:"batch" ~unit_:"jobs/s" throughput;
  print_newline ()

(* ---- service: the resilient campaign service ------------------------------ *)

(* Throughput of the process-isolated campaign service, with and
   without chaos injection, plus the cost of a journal replay.  The
   server spawns `ocapi worker` subprocesses, so the CLI executable is
   located relative to this bench binary inside _build; when it is not
   there (bench built alone) the target degrades to a notice. *)
let service_bench ?(jobs = 8) ?(workers = 2) ?(seu_runs = 60) () =
  Printf.printf "== service: supervised worker processes (%d workers) ==\n"
    workers;
  let cli =
    let dir = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.concat (Filename.dirname dir) "bin") "ocapi_cli.exe"
  in
  if not (Sys.file_exists cli) then
    Printf.printf "service bench skipped: %s not built\n\n" cli
  else begin
    Ocapi_batch.register_design ~name:"hcor" hcor_design;
    Ocapi_batch.register_design
      ~macro_of_kernel:Dect_transceiver.macro_of_kernel ~name:"dect" dect_design;
    let requests =
      List.init jobs (fun i ->
          let line =
            if i mod 2 = 0 then
              Printf.sprintf
                "{\"kind\": \"simulate\", \"design\": \"hcor\", \"engine\": \
                 \"compiled\", \"cycles\": 64, \"seed\": %d}"
                (i + 1)
            else
              Printf.sprintf
                "{\"kind\": \"seu\", \"design\": \"hcor\", \"engine\": \
                 \"compiled\", \"runs\": %d, \"cycles\": 32, \"seed\": %d}"
                seu_runs (i + 1)
          in
          match Ocapi_obs.Json.of_string line with
          | Ok j -> j
          | Error e -> failwith e)
    in
    let rm_rf dir =
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    in
    let run ~tag ~chaos ~fresh =
      let state = Filename.concat "_generated/service-bench" (tag ^ "-state") in
      let artifacts =
        Filename.concat "_generated/service-bench" (tag ^ "-artifacts")
      in
      if fresh then begin
        rm_rf state;
        rm_rf artifacts
      end;
      let cfg =
        {
          Ocapi_service.default_config with
          cf_workers = workers;
          cf_state_dir = state;
          cf_artifact_dir = artifacts;
          cf_worker_cmd = [ cli; "worker" ];
          cf_retries = 4;
          cf_backoff_base = 0.05;
          cf_backoff_cap = 0.5;
          cf_chaos = chaos;
        }
      in
      let t0 = Unix.gettimeofday () in
      let s = Ocapi_service.serve cfg ~requests in
      (Unix.gettimeofday () -. t0, artifacts, s)
    in
    let clean_seconds, clean_artifacts, _ = run ~tag:"clean" ~chaos:None ~fresh:true in
    let chaos_cfg =
      Some
        { Ocapi_service.ch_seed = 11; ch_kill_prob = 0.4; ch_kill_delay = 0.3 }
    in
    let chaos_seconds, chaos_artifacts, chaos =
      run ~tag:"chaos" ~chaos:chaos_cfg ~fresh:true
    in
    (* A third pass over the chaos run's journal with the same manifest:
       everything dedups, so this prices replay + admission alone — the
       fixed cost a restarted server pays before resuming real work. *)
    let recovery_seconds, _, recovery = run ~tag:"chaos" ~chaos:None ~fresh:false in
    (* Chaos must not have cost determinism: both trees byte-identical. *)
    let converged =
      let names dir = List.sort compare (Array.to_list (Sys.readdir dir)) in
      let read f =
        let ic = open_in_bin f in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      names clean_artifacts = names chaos_artifacts
      && List.for_all
           (fun f ->
             read (Filename.concat clean_artifacts f)
             = read (Filename.concat chaos_artifacts f))
           (names clean_artifacts)
    in
    let rate jobs seconds = float_of_int jobs /. seconds in
    Printf.printf
      "clean: %d jobs in %.2fs -> %.1f jobs/s\n\
       chaos: %d jobs in %.2fs -> %.1f jobs/s (%d chaos kills, %d crashes, %d \
       retries)\n\
       recovery replay: %.3fs (%d deduped, 0 re-executed)\n\
       converged: %b (chaos artifact tree byte-identical to clean)\n"
      jobs clean_seconds (rate jobs clean_seconds) jobs chaos_seconds
      (rate jobs chaos_seconds) chaos.Ocapi_service.sm_chaos_kills
      chaos.Ocapi_service.sm_crashes chaos.Ocapi_service.sm_retries
      recovery_seconds recovery.Ocapi_service.sm_deduped converged;
    if not converged then
      print_endline "service bench: WARNING -- chaos run diverged from clean run";
    let json =
      Ocapi_obs.Json.(
        Obj
          [
            ("jobs", Int jobs);
            ("workers", Int workers);
            ("clean_seconds", Float clean_seconds);
            ("clean_throughput_jobs_per_second", Float (rate jobs clean_seconds));
            ("chaos_seconds", Float chaos_seconds);
            ("chaos_throughput_jobs_per_second", Float (rate jobs chaos_seconds));
            ( "chaos",
              Obj
                [
                  ("kills", Int chaos.Ocapi_service.sm_chaos_kills);
                  ("crashes", Int chaos.Ocapi_service.sm_crashes);
                  ("retries", Int chaos.Ocapi_service.sm_retries);
                  ("completed", Int chaos.Ocapi_service.sm_completed);
                  ("poisoned", Int chaos.Ocapi_service.sm_poisoned);
                ] );
            ("recovery_replay_seconds", Float recovery_seconds);
            ("recovery_deduped", Int recovery.Ocapi_service.sm_deduped);
            ("converged", Bool converged);
          ])
    in
    let oc = open_out "BENCH_service.json" in
    output_string oc (Ocapi_obs.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_service.json";
    ledger
      ~bench:(Printf.sprintf "service:clean:j%d:w%d" jobs workers)
      ~engine:"service" ~unit_:"jobs/s" (rate jobs clean_seconds);
    ledger
      ~bench:(Printf.sprintf "service:chaos:j%d:w%d" jobs workers)
      ~engine:"service" ~unit_:"jobs/s" (rate jobs chaos_seconds);
    ledger
      ~bench:(Printf.sprintf "service:recovery-replay:j%d" jobs)
      ~engine:"service" ~unit_:"jobs/s" (rate jobs recovery_seconds);
    print_newline ()
  end

(* ---- native: cold compile vs warm load of the dynlinked engine ------------ *)

(* Two ledger series: [native:compile] tracks how fast the emit +
   ocamlopt + Dynlink path builds a cold DECT plugin (as a rate,
   compiles/s, so the perf gate's higher-is-better verdicts apply), and
   [native:run] tracks the steady-state cycle rate of the loaded
   plugin.  The warm second session proves the cache works: zero
   compiler invocations, one more cache hit. *)
let native_bench ?(cycles = 64000) () =
  print_endline "== native: dynlinked plugin compile/load/run (DECT) ==";
  match Ocapi_native.availability () with
  | Error e ->
    Printf.printf "native engine unavailable -- skipping (%s)\n"
      (Ocapi_error.to_string e)
  | Ok () ->
    let sys = dect_design () in
    let digest = Cycle_system.digest sys in
    Ocapi_native.clear_disk_cache ();
    Flow.Cache.clear ();
    Ocapi_native.reset_stats ();
    let (module E : Ocapi_engine.ENGINE) = Ocapi_engine.get "native" in
    let t0 = Unix.gettimeofday () in
    let ses = E.make sys in
    let compile_seconds = Unix.gettimeofday () -. t0 in
    let run_seconds =
      Fun.protect ~finally:ses.Ocapi_engine.ses_close (fun () ->
          ses.Ocapi_engine.ses_reset ();
          for _ = 1 to min 1000 cycles do ses.Ocapi_engine.ses_step () done;
          ses.Ocapi_engine.ses_reset ();
          let t0 = Unix.gettimeofday () in
          for _ = 1 to cycles do ses.Ocapi_engine.ses_step () done;
          Unix.gettimeofday () -. t0)
    in
    let cold = Ocapi_native.stats () in
    let t0 = Unix.gettimeofday () in
    let warm_ses = E.make sys in
    let warm_load_seconds = Unix.gettimeofday () -. t0 in
    warm_ses.Ocapi_engine.ses_close ();
    let warm = Ocapi_native.stats () in
    let rate = float_of_int cycles /. run_seconds in
    Printf.printf
      "cold: %.3fs to emit+compile+load, then %d cycles at %.0f cycles/s\n"
      compile_seconds cycles rate;
    Printf.printf
      "warm: %.3fs to load (%d compiler invocations, %d cache hits)\n"
      warm_load_seconds
      (warm.Ocapi_native.compiles - cold.Ocapi_native.compiles)
      (warm.Ocapi_native.cache_hits - cold.Ocapi_native.cache_hits);
    if warm.Ocapi_native.compiles <> cold.Ocapi_native.compiles then
      print_endline "  WARM SESSION RAN THE COMPILER!";
    ledger ~digest ~bench:"native:compile" ~engine:"native"
      ~unit_:"compiles/s"
      (1.0 /. compile_seconds);
    ledger ~digest ~bench:"native:run" ~engine:"native" ~unit_:"cycles/s" rate;
    print_newline ()

(* The CI smoke stage: every BENCH_*.json writer at a size that finishes
   in seconds, so the pipeline uploads fresh artifacts on each run. *)
let smoke () =
  t1_json ();
  fault_bench ~sa_faults:40 ~seu_runs:100 ();
  batch_bench ~domains:2 ~seeds:2 ~seu_runs:40 ();
  service_bench ~jobs:4 ~seu_runs:30 ();
  cache_bench ();
  native_bench ~cycles:8000 ()

(* Print the counters recorded in BENCH_cache.json (the `make cache-stats`
   entry point).  A naive scanner keeps this free of a JSON-parsing dep. *)
let cache_stats () =
  if not (Sys.file_exists "BENCH_cache.json") then
    print_endline
      "BENCH_cache.json not found -- run `dune exec bench/main.exe -- cache` \
       (or `make bench-json`) first"
  else begin
    let ic = open_in "BENCH_cache.json" in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let int_field key =
      let needle = Printf.sprintf "\"%s\":" key in
      let n = String.length text and m = String.length needle in
      let rec find i =
        if i + m > n then None
        else if String.sub text i m = needle then Some (i + m)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some pos ->
        let i = ref pos in
        while !i < n && text.[!i] = ' ' do incr i done;
        let j = ref !i in
        while
          !j < n && (match text.[!j] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr j
        done;
        if !j > !i then int_of_string_opt (String.sub text !i (!j - !i))
        else None
    in
    match
      (int_field "hits", int_field "disk_hits", int_field "misses",
       int_field "entries")
    with
    | Some hits, Some disk_hits, Some misses, Some entries ->
      Printf.printf "cache: %d hits (%d from disk), %d misses, %d entries\n"
        hits disk_hits misses entries
    | _ -> print_endline "BENCH_cache.json: no cache counters found"
  end

let () =
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ ->
      [
        "t1"; "c3"; "c4"; "c5"; "c6"; "f5"; "figs"; "fault"; "par"; "micro";
        "cache"; "batch";
      ]
  in
  List.iter
    (fun t ->
      match t with
      | "t1" -> t1 ()
      | "t1-json" -> t1_json ()
      | "c3" -> c3 ()
      | "c4" -> c4 ()
      | "c5" -> c5 ()
      | "c6" -> c6 ()
      | "f5" -> f5 ()
      | "figs" -> figs ()
      | "fault" -> fault_bench ()
      | "par" -> par ()
      | "micro" -> micro ()
      | "cache" -> cache_bench ()
      | "cache-stats" -> cache_stats ()
      | "batch" -> batch_bench ()
      | "service" -> service_bench ()
      | "native" -> native_bench ()
      | "smoke" -> smoke ()
      | other -> Printf.printf "unknown bench target %s\n" other)
    targets;
  ledger_note ()
