#!/usr/bin/env bash
# CI fuzz smoke: the differential fuzzing harness as a PR gate.
#
#   1. Self-test: an injected engine bug (LSB flips from cycle 3) must
#      be caught and shrunk to a reproducer — proving the harness can
#      actually detect a broken engine before we trust its green runs.
#   2. Corpus replay + fresh sweep: every committed reproducer in
#      corpus/fuzz_corpus.jsonl replays clean (historical bugs stay
#      fixed) and ~25 freshly generated designs run every registered
#      engine to agreement.
#   3. Determinism: the serial fuzz report and the --domains 2 report
#      must be byte-identical — the campaign is a function of its seed,
#      never of scheduling.
#
# Usage: scripts/fuzz_gate.sh   (after `dune build`)
# Env: FUZZ_SEED (default 1), FUZZ_COUNT (default 25).
set -euo pipefail
cd "$(dirname "$0")/.."

OCAPI=${OCAPI:-_build/default/bin/ocapi_cli.exe}
if [ ! -x "$OCAPI" ]; then
  echo "error: $OCAPI not built (run: dune build)" >&2
  exit 1
fi

SEED=${FUZZ_SEED:-1}
COUNT=${FUZZ_COUNT:-25}
CORPUS=corpus/fuzz_corpus.jsonl

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail=0

# 1. Harness self-test.
if "$OCAPI" fuzz --self-test --seed 7 --count 3 >"$work/selftest.out" 2>&1; then
  echo "ok   self-test (injected engine bug caught and shrunk)"
else
  echo "FAIL self-test: the harness did not catch the injected engine bug" >&2
  tail -5 "$work/selftest.out" >&2
  fail=1
fi

# 2 + 3. Corpus replay and fresh sweep, serial vs --domains 2.  Each run
# gets a private corpus copy: a divergence appends reproducers, which
# must not leak into the repo file or the second run's replay set.
cp "$CORPUS" "$work/corpus-1.jsonl"
cp "$CORPUS" "$work/corpus-2.jsonl"
if "$OCAPI" fuzz --seed "$SEED" --count "$COUNT" \
  --corpus "$work/corpus-1.jsonl" --json >"$work/fuzz-1.json"; then
  replays=$(grep -cv '^\s*#\|^\s*$' "$CORPUS" || true)
  echo "ok   fuzz sweep (seed $SEED: $replays corpus replays + $COUNT fresh designs, all engines agree)"
else
  echo "FAIL fuzz sweep: divergence or corpus replay failure" >&2
  "$OCAPI" fuzz --seed "$SEED" --count "$COUNT" \
    --corpus "$work/corpus-2.jsonl" 2>&1 | tail -15 >&2 || true
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  "$OCAPI" fuzz --seed "$SEED" --count "$COUNT" --domains 2 \
    --corpus "$work/corpus-2.jsonl" --json >"$work/fuzz-2.json"
  if cmp -s "$work/fuzz-1.json" "$work/fuzz-2.json"; then
    echo "ok   fuzz report determinism (serial vs --domains 2)"
  else
    echo "FAIL fuzz report: serial and --domains 2 bytes differ" >&2
    fail=1
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "fuzz gate: PASS"
else
  echo "fuzz gate: FAIL" >&2
fi
exit "$fail"
