#!/usr/bin/env bash
# The CI pipeline, run locally — mirrors .github/workflows/ci.yml stage
# for stage, so a green run here is the dry-run equivalent of the
# hosted workflow (no act required).  The docs stage is skipped with a
# notice when odoc is absent, exactly the dependency the workflow
# installs via opam.
set -euo pipefail
cd "$(dirname "$0")/.."

stage() {
  echo
  echo "=== $1 ==="
}

stage "build (dune build @all)"
dune build @all

stage "docs (make doc)"
if command -v odoc >/dev/null 2>&1; then
  make doc
else
  echo "skip: odoc not installed here; CI installs it (opam install odoc)"
fi

stage "tests (dune runtest)"
dune runtest

stage "determinism gate (serial vs --domains 2)"
scripts/determinism_gate.sh

stage "crash-recovery gate (seeded chaos + server restart)"
scripts/crash_recovery_gate.sh

stage "fuzz gate (self-test + corpus replay + fresh sweep, serial vs --domains 2)"
scripts/fuzz_gate.sh

stage "bench smoke (BENCH_*.json + perf ledger)"
dune exec bench/main.exe -- smoke
ls -l BENCH_*.json

stage "perf gate self-test (injected collapse must be caught)"
scripts/perf_gate.sh --self-test

stage "perf gate (ledger vs rolling baseline)"
scripts/perf_gate.sh

echo
echo "ci-local: all stages passed"
