#!/usr/bin/env bash
# CI perf gate: judge the newest perf-ledger entry of every benchmark
# series against its rolling baseline (the median of the previous
# WINDOW entries with the same bench/engine/design key), via
# `ocapi report --gate`.
#
# Knobs (env):
#   OCAPI           built CLI        (default _build/default/bin/ocapi_cli.exe)
#   LEDGER          ledger file      (default PERF_LEDGER.jsonl / $OCAPI_LEDGER)
#   WINDOW          baseline window  (default 5)
#   TOLERANCE       fraction below baseline that counts as a regression
#                   (default 0.2)
#   HARD_TOLERANCE  fraction below baseline that counts as a collapse
#                   (default 0.5)
#   FAIL_ON         collapsed | regressed  (default collapsed: ordinary
#                   regressions only warn — shared CI runners are noisy —
#                   while a >50% collapse fails the job)
#
# A missing ledger passes with a notice: the first run of a fresh
# checkout (or an expired CI cache) has no history to gate against.
#
# Usage:
#   scripts/perf_gate.sh              (after `dune build` + `make bench-smoke`)
#   scripts/perf_gate.sh --self-test  synthesize a healthy history plus an
#                                     injected collapse and assert the gate
#                                     rejects it
set -euo pipefail
cd "$(dirname "$0")/.."

OCAPI=${OCAPI:-_build/default/bin/ocapi_cli.exe}
LEDGER=${LEDGER:-${OCAPI_LEDGER:-PERF_LEDGER.jsonl}}
WINDOW=${WINDOW:-5}
TOLERANCE=${TOLERANCE:-0.2}
HARD_TOLERANCE=${HARD_TOLERANCE:-0.5}
FAIL_ON=${FAIL_ON:-collapsed}

if [ ! -x "$OCAPI" ]; then
  echo "error: $OCAPI not built (run: dune build)" >&2
  exit 2
fi

run_gate() { # ledger fail_on
  "$OCAPI" report --ledger "$1" --gate --fail-on "$2" \
    --window "$WINDOW" --tolerance "$TOLERANCE" \
    --hard-tolerance "$HARD_TOLERANCE"
}

if [ "${1:-}" = "--self-test" ]; then
  work=$(mktemp -d)
  trap 'rm -rf "$work"' EXIT
  synth="$work/ledger.jsonl"
  # A steady ~100 cycles/s history, then an injected 10x collapse.
  for v in 100.0 101.0 99.0 100.5 10.0; do
    printf '{"bench":"selftest:t1","engine":"compiled","digest":"d0","value":%s,"unit":"cycles/s","commit":"synthetic","host":"selftest","domains":1,"ts":0.0}\n' \
      "$v"
  done >"$synth"
  if run_gate "$synth" collapsed; then
    echo "perf gate self-test: FAIL (injected collapse not detected)" >&2
    exit 1
  fi
  echo "perf gate self-test: PASS (injected collapse detected)"
  exit 0
fi

if [ ! -f "$LEDGER" ]; then
  echo "perf gate: no ledger at $LEDGER yet -- passing" \
    "(history starts with the next \`make bench-smoke\`)"
  exit 0
fi

run_gate "$LEDGER" "$FAIL_ON"
