#!/usr/bin/env bash
# CI crash-recovery gate: a seeded chaos campaign — workers killed at
# random, the server itself SIGKILLed mid-campaign, one job poisoned so
# it can never succeed — must converge, after a restart against the
# same state dir, to an artifact tree byte-identical to an undisturbed
# run.  This guards the core resilience claim of `ocapi serve`: worker
# death costs a retry, server death costs nothing (the write-ahead
# journal replays queue, in-flight and completed state), and a job that
# keeps crashing is quarantined as Failed/retries-exhausted instead of
# wedging the queue.
#
# Usage: scripts/crash_recovery_gate.sh   (after `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

OCAPI=${OCAPI:-_build/default/bin/ocapi_cli.exe}
if [ ! -x "$OCAPI" ]; then
  echo "error: $OCAPI not built (run: dune build)" >&2
  exit 1
fi

MANIFEST=examples/service_jobs.jsonl
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail=0

ok()   { echo "ok   $1"; }
bad()  { echo "FAIL $1" >&2; fail=1; }

# The reference run drops the poisoned line: it is the tree the chaos
# run must converge to, and the poison job by construction never
# produces an artifact.
grep -v '"chaos"' "$MANIFEST" >"$work/reference.jsonl"

# 1. Undisturbed reference run: everything completes, exit 0.
if "$OCAPI" serve --manifest "$work/reference.jsonl" --workers 2 \
    --state-dir "$work/ref-state" --artifacts "$work/ref-art" \
    --quiet >/dev/null; then
  ok "reference run ($(ls "$work/ref-art" | wc -l) artifacts, exit 0)"
else
  bad "reference run: expected exit 0, got $?"
fi

# 2. Chaos run, phase 1: seeded worker kills, fast retry/backoff, and
#    --die-after 2 makes the server SIGKILL itself after the second
#    journaled completion — the shell must observe exit 137.
chaos_serve() { # extra args...
  "$OCAPI" serve --manifest "$MANIFEST" --workers 2 \
    --state-dir "$work/chaos-state" --artifacts "$work/chaos-art" \
    --retries 2 --backoff-base 0.1 --backoff-cap 1 --backoff-seed 9 \
    --chaos-prob 0.5 --chaos-seed 42 --chaos-delay 0.3 "$@"
}
set +e
chaos_serve --die-after 2 --events-out "$work/events-1.jsonl" \
  --quiet >/dev/null 2>&1
rc=$?
set -e
if [ "$rc" -eq 137 ]; then
  ok "server crash injected (--die-after 2, exit 137)"
else
  bad "phase 1: expected the server to die with exit 137, got $rc"
fi

# 3. Restart the same command against the same state dir.  The journal
#    replay must recover the in-flight/queued jobs, dedup every already
#    completed one, and finish the campaign.  The poisoned job ends as
#    Failed/retries-exhausted, so the exit code is 1 — any other code
#    (0: poison silently succeeded; 137: died again; 4: drained) fails.
set +e
chaos_serve --events-out "$work/events-2.jsonl" \
  >"$work/restart.out" 2>&1
rc=$?
set -e
if [ "$rc" -eq 1 ]; then
  ok "restart finished the campaign (exit 1 from the poisoned job)"
else
  bad "restart: expected exit 1, got $rc (see below)"
  tail -5 "$work/restart.out" >&2 || true
fi
if grep -q "recovered" "$work/restart.out"; then
  ok "journal replay recovered state across the server crash"
else
  bad "restart output never mentioned recovered jobs"
fi

# 4. Convergence: the recovered chaos tree must be byte-identical to
#    the undisturbed reference tree — same filenames, same bytes, no
#    artifact from the poisoned job.
if diff -r "$work/ref-art" "$work/chaos-art" >/dev/null; then
  ok "artifact trees byte-identical (chaos vs reference)"
else
  bad "artifact trees differ between chaos and reference runs"
  diff -r "$work/ref-art" "$work/chaos-art" | head -10 >&2 || true
fi

# 5. The failure path must be observable, not just survivable: the
#    event logs record worker_crashed and job_retried, and the journal
#    holds the poisoned job's terminal Failed/retries-exhausted entry.
cat "$work/events-1.jsonl" "$work/events-2.jsonl" >"$work/events.jsonl" \
  2>/dev/null || true
journal="$work/chaos-state/journal.jsonl"
for kind in worker_crashed job_retried; do
  if grep -q "\"$kind\"" "$work/events.jsonl"; then
    ok "event log records $kind"
  else
    bad "event log is missing $kind"
  fi
done
if grep -q '"retries-exhausted"' "$journal"; then
  ok "journal quarantined the poisoned job (retries-exhausted)"
else
  bad "journal has no retries-exhausted entry for the poisoned job"
fi

if [ "$fail" -eq 0 ]; then
  echo "crash-recovery gate: PASS"
else
  echo "crash-recovery gate: FAIL" >&2
fi
exit "$fail"
