#!/usr/bin/env bash
# CI determinism gate: campaign reports and batch artifact trees must
# be bit-identical between a serial run and a --domains 2 run.  This
# guards the core claim of the parallel runner and the batch service —
# extra worker domains change wall time, never results.
#
# Usage: scripts/determinism_gate.sh   (after `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

OCAPI=${OCAPI:-_build/default/bin/ocapi_cli.exe}
if [ ! -x "$OCAPI" ]; then
  echo "error: $OCAPI not built (run: dune build)" >&2
  exit 1
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail=0

check_cmp() { # label serial_file parallel_file
  if cmp -s "$2" "$3"; then
    echo "ok   $1"
  else
    echo "FAIL $1: serial and --domains 2 outputs differ" >&2
    fail=1
  fi
}

# 1. SEU campaign report: 300 seeded register bit-flip runs on the DECT
#    transceiver, classified masked / SDC / detected.
"$OCAPI" fault --design dect --campaign seu --runs 300 --seed 1 \
  --json >"$work/seu-1.json"
"$OCAPI" fault --design dect --campaign seu --runs 300 --seed 1 \
  --domains 2 --json >"$work/seu-2.json"
check_cmp "seu report (dect, 300 runs)" "$work/seu-1.json" "$work/seu-2.json"

# 1b. The same SEU campaign on the native (dynlinked) engine: the
#     regenerated simulator must classify every run identically whether
#     sessions are built serially or from two worker domains at once
#     (each session dynlinks a private plugin instance — this guards
#     that isolation).
"$OCAPI" fault --design dect --campaign seu --runs 300 --seed 1 \
  --engine native --json >"$work/seu-native-1.json"
"$OCAPI" fault --design dect --campaign seu --runs 300 --seed 1 \
  --engine native --domains 2 --json >"$work/seu-native-2.json"
check_cmp "seu report (dect, native engine, 300 runs)" \
  "$work/seu-native-1.json" "$work/seu-native-2.json"

# 1c. The same SEU campaign on the gate (synthesized netlist) engine:
#     flips land on physical flip-flop q-nets, and each worker domain
#     synthesizes and simulates a private netlist instance.  Fewer runs
#     — gate simulation is the slowest engine.
"$OCAPI" fault --design hcor --campaign seu --runs 60 --cycles 24 --seed 1 \
  --engine gate --json >"$work/seu-gate-1.json"
"$OCAPI" fault --design hcor --campaign seu --runs 60 --cycles 24 --seed 1 \
  --engine gate --domains 2 --json >"$work/seu-gate-2.json"
check_cmp "seu report (hcor, gate engine, 60 runs)" \
  "$work/seu-gate-1.json" "$work/seu-gate-2.json"

# 1d. The gallery designs ride the same check: the RS codec's SEU
#     classification and the accumulator CPU's (whose RAM cell crosses
#     the timed/untimed loop) must be domain-count-invariant too.
"$OCAPI" fault --design rs --campaign seu --runs 300 --cycles 45 --seed 1 \
  --json >"$work/seu-rs-1.json"
"$OCAPI" fault --design rs --campaign seu --runs 300 --cycles 45 --seed 1 \
  --domains 2 --json >"$work/seu-rs-2.json"
check_cmp "seu report (rs, 300 runs)" "$work/seu-rs-1.json" "$work/seu-rs-2.json"

"$OCAPI" fault --design cpu --campaign seu --runs 300 --seed 1 \
  --json >"$work/seu-cpu-1.json"
"$OCAPI" fault --design cpu --campaign seu --runs 300 --seed 1 \
  --domains 2 --json >"$work/seu-cpu-2.json"
check_cmp "seu report (cpu, 300 runs)" "$work/seu-cpu-1.json" "$work/seu-cpu-2.json"

# 2. Stuck-at campaign report: a seeded 80-fault sample of the DECT
#    gate-level netlist.
"$OCAPI" fault --design dect --campaign stuck-at --cycles 24 \
  --max-faults 80 --seed 1 --json >"$work/sa-1.json"
"$OCAPI" fault --design dect --campaign stuck-at --cycles 24 \
  --max-faults 80 --seed 1 --domains 2 --json >"$work/sa-2.json"
check_cmp "stuck-at report (dect, 80 faults)" "$work/sa-1.json" "$work/sa-2.json"

# 2b. Pre/post-optimization stuck-at compare: both campaigns and the
#     IR provenance chain must be bit-identical across domain counts.
"$OCAPI" fault --design hcor --campaign stuck-at --optimized --cycles 24 \
  --max-faults 60 --seed 1 --json >"$work/sa-opt-1.json"
"$OCAPI" fault --design hcor --campaign stuck-at --optimized --cycles 24 \
  --max-faults 60 --seed 1 --domains 2 --json >"$work/sa-opt-2.json"
check_cmp "stuck-at --optimized report (hcor, 60 faults)" \
  "$work/sa-opt-1.json" "$work/sa-opt-2.json"

# 3. Batch artifact tree and canonical event log: the example manifest
#    (simulate + seu + stuck-at + engine-sweep, with a duplicate)
#    through the job queue.  Artifact bytes and filenames must match
#    file-for-file, and the --events-out lifecycle log — canonicalized
#    by correlation id, not arrival order — must be byte-identical.
"$OCAPI" batch --manifest examples/jobs.jsonl \
  --artifacts "$work/art-1" --events-out "$work/events-1.jsonl" \
  --quiet >/dev/null
"$OCAPI" batch --manifest examples/jobs.jsonl --domains 2 \
  --artifacts "$work/art-2" --events-out "$work/events-2.jsonl" \
  --quiet >/dev/null
check_cmp "batch event log ($(wc -l <"$work/events-1.jsonl") events)" \
  "$work/events-1.jsonl" "$work/events-2.jsonl"
if diff -r "$work/art-1" "$work/art-2" >/dev/null; then
  echo "ok   batch artifacts ($(ls "$work/art-1" | wc -l) files)"
else
  echo "FAIL batch artifacts: serial and --domains 2 trees differ" >&2
  diff -r "$work/art-1" "$work/art-2" | head -10 >&2 || true
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "determinism gate: PASS"
else
  echo "determinism gate: FAIL" >&2
fi
exit "$fail"
